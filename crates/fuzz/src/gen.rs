//! Grammar-directed program generation.
//!
//! [`generate`] maps a seed to a closed MiniC program that is — by
//! construction — type-correct, trap-free, and terminating:
//!
//! * every division/remainder denominator is forced odd with `| 1`;
//! * shift amounts are masked with `& 15`;
//! * array lengths are powers of two and every index is masked with
//!   `& (len - 1)` (safe for negative indices in two's complement);
//! * every local is initialized at its declaration, and arrays/malloc
//!   cells are filled by a paired init loop before any read;
//! * loops count a dedicated variable the generated body can never
//!   assign, and recursion decrements a depth parameter seeded with a
//!   small constant, so termination is structural;
//! * global pointers are seated (`p = &g;`) at the top of `main` before
//!   any code that could dereference them runs.
//!
//! The VM's wrapping arithmetic makes everything else total, so the only
//! runtime faults a *generated* program can hit are resource budgets.

use crate::ast::{BinOp, Expr, Global, Helper, LValue, LoopKind, Program, Stmt};
use crate::rng::Rng;

/// How often each grammar construct appeared in a program (or a whole
/// campaign, via [`ConstructStats::merge`]). The generator tests assert
/// minimum hit rates so coverage cannot silently rot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructStats {
    /// Scalar globals.
    pub globals: usize,
    /// Global arrays.
    pub global_arrays: usize,
    /// Global pointer variables.
    pub global_ptrs: usize,
    /// Helper functions.
    pub helpers: usize,
    /// Self-recursive helpers.
    pub recursive_helpers: usize,
    /// `for` loops.
    pub fors: usize,
    /// `while` loops.
    pub whiles: usize,
    /// `do … while` loops.
    pub do_whiles: usize,
    /// `if` statements.
    pub ifs: usize,
    /// Pointer dereferences (reads and writes).
    pub derefs: usize,
    /// `&local` — address-taken locals.
    pub addr_of_local: usize,
    /// `&global`.
    pub addr_of_global: usize,
    /// Array element reads/writes.
    pub indexes: usize,
    /// `malloc` sites.
    pub mallocs: usize,
    /// Local array declarations.
    pub local_arrays: usize,
    /// Helper call sites.
    pub calls: usize,
    /// Compound assignments (`+=` etc.).
    pub compound_assigns: usize,
    /// `++`/`--` statements.
    pub incrs: usize,
    /// `break` statements.
    pub breaks: usize,
    /// `continue` statements.
    pub continues: usize,
    /// `print_int` statements in the body (epilogue prints excluded).
    pub prints: usize,
    /// Division/remainder operations.
    pub divisions: usize,
    /// Shift operations.
    pub shifts: usize,
}

impl ConstructStats {
    /// Adds `other` into `self` (campaign aggregation).
    pub fn merge(&mut self, other: &ConstructStats) {
        let pairs: [(&mut usize, usize); 23] = [
            (&mut self.globals, other.globals),
            (&mut self.global_arrays, other.global_arrays),
            (&mut self.global_ptrs, other.global_ptrs),
            (&mut self.helpers, other.helpers),
            (&mut self.recursive_helpers, other.recursive_helpers),
            (&mut self.fors, other.fors),
            (&mut self.whiles, other.whiles),
            (&mut self.do_whiles, other.do_whiles),
            (&mut self.ifs, other.ifs),
            (&mut self.derefs, other.derefs),
            (&mut self.addr_of_local, other.addr_of_local),
            (&mut self.addr_of_global, other.addr_of_global),
            (&mut self.indexes, other.indexes),
            (&mut self.mallocs, other.mallocs),
            (&mut self.local_arrays, other.local_arrays),
            (&mut self.calls, other.calls),
            (&mut self.compound_assigns, other.compound_assigns),
            (&mut self.incrs, other.incrs),
            (&mut self.breaks, other.breaks),
            (&mut self.continues, other.continues),
            (&mut self.prints, other.prints),
            (&mut self.divisions, other.divisions),
            (&mut self.shifts, other.shifts),
        ];
        for (a, b) in pairs {
            *a += b;
        }
    }

    /// Computes the stats of one program by walking its AST.
    pub fn of(p: &Program) -> ConstructStats {
        let mut s = ConstructStats::default();
        let global_names: Vec<&str> = p.globals.iter().map(|g| g.name()).collect();
        for g in &p.globals {
            match g {
                Global::Scalar { .. } => s.globals += 1,
                Global::Array { .. } => s.global_arrays += 1,
                Global::Ptr { .. } => s.global_ptrs += 1,
            }
        }
        for h in &p.helpers {
            s.helpers += 1;
            if h.recursive {
                s.recursive_helpers += 1;
            }
            stats_stmts(&h.body, &global_names, &mut s);
            stats_expr(&h.ret, &mut s);
        }
        stats_stmts(&p.main_body, &global_names, &mut s);
        s
    }
}

fn stats_expr(e: &Expr, s: &mut ConstructStats) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Deref(_) => s.derefs += 1,
        Expr::Index(_, i) => {
            s.indexes += 1;
            stats_expr(i, s);
        }
        Expr::Neg(a) | Expr::Not(a) => stats_expr(a, s),
        Expr::Bin(op, a, b) => {
            match op {
                BinOp::Div | BinOp::Rem => s.divisions += 1,
                BinOp::Shl | BinOp::Shr => s.shifts += 1,
                _ => {}
            }
            stats_expr(a, s);
            stats_expr(b, s);
        }
        Expr::Call(_, args) => {
            s.calls += 1;
            for a in args {
                stats_expr(a, s);
            }
        }
    }
}

fn stats_addr(target: &str, globals: &[&str], s: &mut ConstructStats) {
    if globals.contains(&target) {
        s.addr_of_global += 1;
    } else {
        s.addr_of_local += 1;
    }
}

fn stats_stmts(stmts: &[Stmt], globals: &[&str], s: &mut ConstructStats) {
    for st in stmts {
        match st {
            Stmt::DeclInt { init, .. } => stats_expr(init, s),
            Stmt::DeclPtr { target, .. } => stats_addr(target, globals, s),
            Stmt::DeclMalloc { .. } => s.mallocs += 1,
            Stmt::DeclArr { .. } => s.local_arrays += 1,
            Stmt::Assign { op, lhs, rhs } => {
                if op.is_some() {
                    s.compound_assigns += 1;
                }
                match lhs {
                    LValue::Var(_) => {}
                    LValue::Deref(_) => s.derefs += 1,
                    LValue::Index(_, i) => {
                        s.indexes += 1;
                        stats_expr(i, s);
                    }
                }
                stats_expr(rhs, s);
            }
            Stmt::Incr { .. } => s.incrs += 1,
            Stmt::PtrAssign { target, .. } => stats_addr(target, globals, s),
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                s.ifs += 1;
                stats_expr(cond, s);
                stats_stmts(then_s, globals, s);
                stats_stmts(else_s, globals, s);
            }
            Stmt::Loop { kind, body, .. } => {
                match kind {
                    LoopKind::For => s.fors += 1,
                    LoopKind::While => s.whiles += 1,
                    LoopKind::DoWhile => s.do_whiles += 1,
                }
                stats_stmts(body, globals, s);
            }
            Stmt::Print(e) => {
                s.prints += 1;
                stats_expr(e, s);
            }
            Stmt::ExprStmt(e) => stats_expr(e, s),
            Stmt::Break => s.breaks += 1,
            Stmt::Continue => s.continues += 1,
        }
    }
}

/// What the expression/statement generators may reference at one point
/// in the program.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// Readable int scalars (locals, counters, params, scalar globals).
    readable: Vec<String>,
    /// Assignable int scalars (excludes loop counters and parameters).
    writable: Vec<String>,
    /// `int *` variables currently safe to dereference.
    ptrs: Vec<String>,
    /// Arrays safe to read (fully initialized): `(name, len)`.
    arrays: Vec<(String, usize)>,
    /// Scalars whose address may be taken, with `is_local` flags.
    addressable: Vec<(String, bool)>,
    /// Callable helpers: `(name, extra_args, recursive)`.
    callables: Vec<(String, usize, bool)>,
}

/// Where a statement is being generated, loop-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopCtx {
    /// Not inside any generated loop.
    None,
    /// Inside a `while`/`do` loop — `break` is legal, `continue` is not
    /// (the counter increment lives at the end of the body).
    BreakOnly,
    /// Inside a `for` loop — both `break` and `continue` are legal.
    ForLoop,
}

struct Gen {
    rng: Rng,
    next_local: usize,
    next_counter: usize,
}

impl Gen {
    fn fresh_local(&mut self) -> String {
        let n = self.next_local;
        self.next_local += 1;
        format!("v{n}")
    }

    fn fresh_counter(&mut self) -> String {
        let n = self.next_counter;
        self.next_counter += 1;
        format!("c{n}")
    }

    // -- expressions ---------------------------------------------------

    fn const_expr(&mut self) -> Expr {
        Expr::Const(if self.rng.chance(1, 8) {
            self.rng.range(-100_000, 100_000)
        } else {
            self.rng.range(-8, 16)
        })
    }

    fn leaf(&mut self, scope: &Scope) -> Expr {
        let mut options: Vec<u32> = vec![0, 0];
        if !scope.readable.is_empty() {
            options.extend([1, 1, 1]);
        }
        if !scope.ptrs.is_empty() {
            options.extend([2, 2]);
        }
        if !scope.arrays.is_empty() {
            options.extend([3, 3]);
        }
        match *self.rng.pick(&options) {
            0 => self.const_expr(),
            1 => Expr::Var(self.rng.pick(&scope.readable).clone()),
            2 => Expr::Deref(self.rng.pick(&scope.ptrs).clone()),
            _ => {
                let (name, len) = self.rng.pick(&scope.arrays).clone();
                Expr::Index(name, Box::new(self.masked_index(scope, len)))
            }
        }
    }

    /// An index expression masked to `[0, len)` — `len` is a power of
    /// two, and `& (len - 1)` is nonnegative even for negative operands.
    fn masked_index(&mut self, scope: &Scope, len: usize) -> Expr {
        let inner = if self.rng.chance(1, 2) && !scope.readable.is_empty() {
            Expr::Var(self.rng.pick(&scope.readable).clone())
        } else {
            self.const_expr()
        };
        Expr::Bin(
            BinOp::BitAnd,
            Box::new(inner),
            Box::new(Expr::Const(len as i64 - 1)),
        )
    }

    fn expr(&mut self, scope: &Scope, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(1, 4) {
            return self.leaf(scope);
        }
        match self.rng.below(12) {
            // Plain wrapping arithmetic / bitwise / comparisons.
            0..=5 => {
                let op = *self.rng.pick(&[
                    BinOp::Add,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::BitAnd,
                    BinOp::BitOr,
                    BinOp::BitXor,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::LAnd,
                    BinOp::LOr,
                ]);
                Expr::Bin(
                    op,
                    Box::new(self.expr(scope, depth - 1)),
                    Box::new(self.expr(scope, depth - 1)),
                )
            }
            // Division/remainder with an always-odd denominator.
            6 => {
                let op = *self.rng.pick(&[BinOp::Div, BinOp::Rem]);
                let den = Expr::Bin(
                    BinOp::BitOr,
                    Box::new(self.expr(scope, depth - 1)),
                    Box::new(Expr::Const(1)),
                );
                Expr::Bin(op, Box::new(self.expr(scope, depth - 1)), Box::new(den))
            }
            // Shifts with a masked amount.
            7 => {
                let op = *self.rng.pick(&[BinOp::Shl, BinOp::Shr]);
                let amt = Expr::Bin(
                    BinOp::BitAnd,
                    Box::new(self.expr(scope, depth - 1)),
                    Box::new(Expr::Const(15)),
                );
                Expr::Bin(op, Box::new(self.expr(scope, depth - 1)), Box::new(amt))
            }
            8 => Expr::Neg(Box::new(self.expr(scope, depth - 1))),
            9 => Expr::Not(Box::new(self.expr(scope, depth - 1))),
            // Helper call (falls back to a leaf when none are in scope).
            _ => match scope.callables.is_empty() {
                true => self.leaf(scope),
                false => {
                    let (name, extra, recursive) = self.rng.pick(&scope.callables).clone();
                    let mut args = Vec::new();
                    if recursive {
                        // Depth argument: a small constant bounds the
                        // recursion structurally.
                        args.push(Expr::Const(self.rng.range(1, 6)));
                    }
                    for _ in 0..extra {
                        args.push(self.expr(scope, depth - 1));
                    }
                    Expr::Call(name, args)
                }
            },
        }
    }

    // -- statements ----------------------------------------------------

    /// One writable location, preferring variety.
    fn lvalue(&mut self, scope: &Scope) -> Option<LValue> {
        let mut options: Vec<u32> = Vec::new();
        if !scope.writable.is_empty() {
            options.extend([0, 0, 0]);
        }
        if !scope.ptrs.is_empty() {
            options.extend([1, 1]);
        }
        if !scope.arrays.is_empty() {
            options.extend([2, 2]);
        }
        if options.is_empty() {
            return None;
        }
        Some(match *self.rng.pick(&options) {
            0 => LValue::Var(self.rng.pick(&scope.writable).clone()),
            1 => LValue::Deref(self.rng.pick(&scope.ptrs).clone()),
            _ => {
                let (name, len) = self.rng.pick(&scope.arrays).clone();
                LValue::Index(name, self.masked_index(scope, len))
            }
        })
    }

    /// An array-fill loop: `for (c = 0; c < len; c++) { a[c] = e; }` —
    /// paired with every local array / malloc declaration so cells are
    /// initialized before any read.
    fn fill_loop(&mut self, name: &str, len: usize) -> Stmt {
        let counter = self.fresh_counter();
        let value = if self.rng.chance(1, 2) {
            Expr::Var(counter.clone())
        } else {
            self.const_expr()
        };
        Stmt::Loop {
            kind: LoopKind::For,
            counter: counter.clone(),
            bound: len as i64,
            body: vec![Stmt::Assign {
                op: None,
                lhs: LValue::Index(name.to_string(), Expr::Var(counter)),
                rhs: value,
            }],
        }
    }

    /// Appends one generated statement (occasionally a declaration pair)
    /// to `out`, updating `scope` with anything it declares.
    fn stmt(&mut self, scope: &mut Scope, ctx: LoopCtx, nest: usize, out: &mut Vec<Stmt>) {
        let roll = self.rng.below(20);
        match roll {
            // Declarations.
            0 | 1 => {
                let name = self.fresh_local();
                let init = self.expr(scope, 2);
                out.push(Stmt::DeclInt {
                    name: name.clone(),
                    init,
                });
                scope.readable.push(name.clone());
                scope.writable.push(name.clone());
                scope.addressable.push((name, true));
            }
            2 if !scope.addressable.is_empty() => {
                let name = self.fresh_local();
                let (target, _) = self.rng.pick(&scope.addressable).clone();
                out.push(Stmt::DeclPtr {
                    name: name.clone(),
                    target,
                });
                scope.ptrs.push(name);
            }
            3 if nest == 0 => {
                // Arrays and malloc only at block depth 0: the paired
                // fill loop must dominate every later read.
                let name = self.fresh_local();
                let len = *self.rng.pick(&[4usize, 8, 16]);
                if self.rng.chance(1, 2) {
                    out.push(Stmt::DeclMalloc {
                        name: name.clone(),
                        len,
                    });
                } else {
                    out.push(Stmt::DeclArr {
                        name: name.clone(),
                        len,
                    });
                }
                out.push(self.fill_loop(&name, len));
                scope.arrays.push((name, len));
            }
            // Mutation.
            4..=8 => {
                if let Some(lhs) = self.lvalue(scope) {
                    let op = if self.rng.chance(1, 3) {
                        Some(*self.rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]))
                    } else {
                        None
                    };
                    let rhs = self.expr(scope, 2);
                    out.push(Stmt::Assign { op, lhs, rhs });
                }
            }
            9 if !scope.writable.is_empty() => {
                out.push(Stmt::Incr {
                    name: self.rng.pick(&scope.writable).clone(),
                    down: self.rng.chance(1, 2),
                });
            }
            // Reseats only at block depth 0: an outer pointer must never
            // be seated to an inner block's local (whose storage the
            // optimizer may treat as dead after the block).
            10 if nest == 0 && !scope.ptrs.is_empty() && !scope.addressable.is_empty() => {
                let name = self.rng.pick(&scope.ptrs).clone();
                let (target, _) = self.rng.pick(&scope.addressable).clone();
                out.push(Stmt::PtrAssign { name, target });
            }
            // Control flow.
            11 | 12 => {
                let cond = self.expr(scope, 2);
                let mut inner = scope.clone();
                let then_len = 1 + self.rng.below(3) as usize;
                let then_s = self.block(&mut inner, ctx, nest + 1, then_len);
                let else_s = if self.rng.chance(1, 2) {
                    let mut inner = scope.clone();
                    let else_len = 1 + self.rng.below(2) as usize;
                    self.block(&mut inner, ctx, nest + 1, else_len)
                } else {
                    Vec::new()
                };
                out.push(Stmt::If {
                    cond,
                    then_s,
                    else_s,
                });
            }
            13 | 14 if nest < 3 => {
                let kind = *self.rng.pick(&[
                    LoopKind::For,
                    LoopKind::For,
                    LoopKind::While,
                    LoopKind::DoWhile,
                ]);
                let counter = self.fresh_counter();
                let bound = self.rng.range(2, 12);
                let mut inner = scope.clone();
                // The body may *read* the counter but never assign it.
                inner.readable.push(counter.clone());
                let inner_ctx = match kind {
                    LoopKind::For => LoopCtx::ForLoop,
                    _ => LoopCtx::BreakOnly,
                };
                let body_len = 1 + self.rng.below(4) as usize;
                let body = self.block(&mut inner, inner_ctx, nest + 1, body_len);
                out.push(Stmt::Loop {
                    kind,
                    counter,
                    bound,
                    body,
                });
            }
            15 if ctx != LoopCtx::None => {
                // Guarded early exit: `if (cond) break/continue;`.
                let cond = self.expr(scope, 1);
                let jump = if ctx == LoopCtx::ForLoop && self.rng.chance(1, 2) {
                    Stmt::Continue
                } else {
                    Stmt::Break
                };
                out.push(Stmt::If {
                    cond,
                    then_s: vec![jump],
                    else_s: Vec::new(),
                });
            }
            // Observation and calls.
            16 | 17 => out.push(Stmt::Print(self.expr(scope, 2))),
            _ if !scope.callables.is_empty() => {
                let (name, extra, recursive) = self.rng.pick(&scope.callables).clone();
                let mut args = Vec::new();
                if recursive {
                    args.push(Expr::Const(self.rng.range(1, 6)));
                }
                for _ in 0..extra {
                    args.push(self.expr(scope, 1));
                }
                out.push(Stmt::ExprStmt(Expr::Call(name, args)));
            }
            _ => out.push(Stmt::Print(self.expr(scope, 1))),
        }
    }

    fn block(&mut self, scope: &mut Scope, ctx: LoopCtx, nest: usize, len: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..len {
            self.stmt(scope, ctx, nest, &mut out);
        }
        out
    }
}

/// The scope every function starts from: scalar and array globals.
/// Global pointers are excluded — they are null until `main` seats them,
/// so only `main`'s generator (which emits the seats first) may
/// dereference them.
fn base_scope(globals: &[Global]) -> Scope {
    let mut s = Scope::default();
    for gl in globals {
        match gl {
            Global::Scalar { name, .. } => {
                s.readable.push(name.clone());
                s.writable.push(name.clone());
                s.addressable.push((name.clone(), false));
            }
            Global::Array { name, len } => s.arrays.push((name.clone(), *len)),
            Global::Ptr { .. } => {}
        }
    }
    s
}

/// Generates the program for one seed. Deterministic: the same seed
/// always yields the identical program.
pub fn generate(seed: u64) -> Program {
    let mut g = Gen {
        rng: Rng::new(seed),
        next_local: 0,
        next_counter: 0,
    };
    let mut p = Program::default();

    // Globals: scalars, sometimes an array, sometimes pointers.
    let n_scalars = g.rng.range(2, 5);
    for i in 0..n_scalars {
        p.globals.push(Global::Scalar {
            name: format!("g{i}"),
            init: g.rng.range(-4, 12),
        });
    }
    for i in 0..g.rng.range(0, 2) {
        p.globals.push(Global::Array {
            name: format!("ga{i}"),
            len: *g.rng.pick(&[4usize, 8, 16]),
        });
    }
    let n_ptrs = g.rng.range(0, 2);
    for i in 0..n_ptrs {
        p.globals.push(Global::Ptr {
            name: format!("gp{i}"),
        });
    }

    let base_scope = base_scope(&p.globals);

    // Helpers: each may call every earlier helper (and itself when
    // recursive), so the call graph is loop-free apart from bounded
    // self-recursion.
    let n_helpers = g.rng.range(0, 3);
    for i in 0..n_helpers {
        let recursive = g.rng.chance(1, 3);
        let mut params = Vec::new();
        if recursive {
            params.push(format!("h{i}d"));
        }
        for j in 0..g.rng.range(0, 2) {
            params.push(format!("h{i}a{j}"));
        }
        let mut scope = base_scope.clone();
        for (k, param) in params.iter().enumerate() {
            // Parameters are read-only; in particular the depth
            // parameter of a recursive helper must never be assigned.
            let _ = k;
            scope.readable.push(param.clone());
        }
        for h in &p.helpers {
            let extra = h.params.len() - usize::from(h.recursive);
            scope.callables.push((h.name.clone(), extra, h.recursive));
        }
        // The return expression of a recursive helper renders twice:
        // once in the base case *above* the body, so it may only use
        // the pre-body scope (params and globals, not body locals).
        let pre_body = scope.clone();
        let body_len = 2 + g.rng.below(4) as usize;
        let body = g.block(&mut scope, LoopCtx::None, 1, body_len);
        let ret = if recursive {
            g.expr(&pre_body, 2)
        } else {
            g.expr(&scope, 2)
        };
        p.helpers.push(Helper {
            name: format!("f{i}"),
            params,
            recursive,
            body,
            ret,
        });
    }

    // Main: seat every global pointer first, then the generated body.
    let mut scope = base_scope;
    for h in &p.helpers {
        let extra = h.params.len() - usize::from(h.recursive);
        scope.callables.push((h.name.clone(), extra, h.recursive));
    }
    let scalar_names: Vec<String> = p
        .globals
        .iter()
        .filter_map(|gl| match gl {
            Global::Scalar { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    for gl in &p.globals {
        if let Global::Ptr { name } = gl {
            let target = g.rng.pick(&scalar_names).clone();
            p.main_body.push(Stmt::PtrAssign {
                name: name.clone(),
                target,
            });
            scope.ptrs.push(name.clone());
        }
    }
    let body_len = 6 + g.rng.below(14) as usize;
    let body = g.block(&mut scope, LoopCtx::None, 0, body_len);
    p.main_body.extend(body);
    p
}

/// Applies one single-function edit: regenerates the body (and return
/// expression) of one helper, or `main`'s suffix after the pointer-seat
/// prologue, under exactly the invariants [`generate`] guarantees — so a
/// mutated program is still closed, trap-free, and terminating.
/// Signatures, globals, and every other function are untouched, which is
/// what makes mutants useful for exercising incremental recompilation:
/// only the edited function's fingerprint (plus any caller whose callee
/// summary changed) should miss the cache. Deterministic in
/// `(program, seed)`.
pub fn mutate(program: &Program, seed: u64) -> Program {
    let mut p = program.clone();
    let mut g = Gen {
        rng: Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1)),
        // A namespace the base generator never reaches, so regenerated
        // declarations cannot collide with surviving ones.
        next_local: 10_000,
        next_counter: 10_000,
    };
    let base = base_scope(&p.globals);
    let target = g.rng.below(p.helpers.len() as u64 + 1) as usize;
    if target < p.helpers.len() {
        // Rebuild the helper's scope the way `generate` did: globals,
        // its own (read-only) parameters, and every *earlier* helper.
        let mut scope = base;
        for param in &p.helpers[target].params {
            scope.readable.push(param.clone());
        }
        for h in &p.helpers[..target] {
            let extra = h.params.len() - usize::from(h.recursive);
            scope.callables.push((h.name.clone(), extra, h.recursive));
        }
        let pre_body = scope.clone();
        let body_len = 2 + g.rng.below(4) as usize;
        let body = g.block(&mut scope, LoopCtx::None, 1, body_len);
        let recursive = p.helpers[target].recursive;
        let ret = if recursive {
            // The base case renders above the body, so it may only use
            // the pre-body scope.
            g.expr(&pre_body, 2)
        } else {
            g.expr(&scope, 2)
        };
        let h = &mut p.helpers[target];
        h.body = body;
        h.ret = ret;
    } else {
        // Regenerate `main` below the seat prologue; the seats stay, so
        // every global pointer is still seated before any dereference.
        let mut scope = base;
        for h in &p.helpers {
            let extra = h.params.len() - usize::from(h.recursive);
            scope.callables.push((h.name.clone(), extra, h.recursive));
        }
        let mut seats = 0;
        for gl in &p.globals {
            if let Global::Ptr { name } = gl {
                scope.ptrs.push(name.clone());
                seats += 1;
            }
        }
        p.main_body.truncate(seats);
        let body_len = 6 + g.rng.below(14) as usize;
        let body = g.block(&mut scope, LoopCtx::None, 0, body_len);
        p.main_body.extend(body);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
            assert_eq!(generate(seed).render(), generate(seed).render());
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn mutation_is_deterministic_and_single_function() {
        for seed in 0..30u64 {
            let base = generate(seed);
            let m1 = mutate(&base, seed ^ 0xABCD);
            let m2 = mutate(&base, seed ^ 0xABCD);
            assert_eq!(m1, m2, "seed {seed}");
            assert_ne!(m1, base, "mutation must change the program: seed {seed}");
            // Globals and every function signature survive untouched.
            assert_eq!(m1.globals, base.globals);
            assert_eq!(m1.helpers.len(), base.helpers.len());
            for (a, b) in m1.helpers.iter().zip(base.helpers.iter()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.params, b.params);
                assert_eq!(a.recursive, b.recursive);
            }
            // Exactly one function's code changed.
            let mut changed = usize::from(m1.main_body != base.main_body);
            changed += m1
                .helpers
                .iter()
                .zip(base.helpers.iter())
                .filter(|(a, b)| a.body != b.body || a.ret != b.ret)
                .count();
            assert_eq!(changed, 1, "seed {seed}");
            // The pointer-seat prologue survives a main-body rewrite.
            let seats = base
                .globals
                .iter()
                .filter(|g| matches!(g, Global::Ptr { .. }))
                .count();
            assert_eq!(m1.main_body[..seats], base.main_body[..seats]);
        }
    }

    #[test]
    fn mutants_still_compile_and_terminate() {
        use driver::Session;
        let session = Session::builder().threads(Some(1)).build();
        for seed in 0..10u64 {
            let mut p = generate(seed);
            for e in 0..3u64 {
                p = mutate(&p, seed.wrapping_add(e));
                session
                    .compile_and_run(&p.render())
                    .unwrap_or_else(|err| panic!("seed {seed} edit {e}: {err}"));
            }
        }
    }

    #[test]
    fn stats_count_constructs() {
        let mut total = ConstructStats::default();
        for seed in 0..50 {
            total.merge(&ConstructStats::of(&generate(seed)));
        }
        // 50 programs must collectively hit the core constructs.
        assert!(total.globals >= 100, "globals: {}", total.globals);
        assert!(total.fors > 0, "for loops");
        assert!(total.ifs > 0, "ifs");
        assert!(total.derefs > 0, "derefs");
        assert!(total.calls > 0, "calls");
        assert!(total.prints > 0, "prints");
    }
}
