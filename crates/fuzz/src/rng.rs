//! Deterministic xorshift64* generator — the same recurrence the
//! repository's property tests use, so a seed printed by any harness
//! reproduces bit-identically everywhere with zero dependencies.

/// Splittable deterministic RNG.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator. The golden-ratio XOR decorrelates small
    /// consecutive seeds (0, 1, 2, …), which is exactly how campaign
    /// seeds are assigned.
    pub fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Rng::new(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }
}
