//! Deterministic addressing of AST nodes.
//!
//! The reducer mutates clones of a [`Program`] one node at a time. To do
//! that repeatably it needs a stable enumeration of "the i-th block" and
//! "the i-th expression": these walkers visit nodes in source order
//! (main body first, then each helper), pre-order within a statement
//! tree, so index `i` names the same node on every walk of an unchanged
//! program.

use crate::ast::{Expr, LValue, Program, Stmt};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------

fn walk_blocks(
    stmts: &mut Vec<Stmt>,
    n: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Vec<Stmt>),
) -> bool {
    if *n == target {
        f(stmts);
        return true;
    }
    *n += 1;
    for s in stmts.iter_mut() {
        let hit = match s {
            Stmt::If { then_s, else_s, .. } => {
                walk_blocks(then_s, n, target, f) || walk_blocks(else_s, n, target, f)
            }
            Stmt::Loop { body, .. } => walk_blocks(body, n, target, f),
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

/// Number of statement blocks in the program (every `Vec<Stmt>`: the
/// main body, helper bodies, and each `if`/loop body).
pub fn block_count(p: &Program) -> usize {
    fn count(stmts: &[Stmt]) -> usize {
        1 + stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then_s, else_s, .. } => count(then_s) + count(else_s),
                Stmt::Loop { body, .. } => count(body),
                _ => 0,
            })
            .sum::<usize>()
    }
    count(&p.main_body) + p.helpers.iter().map(|h| count(&h.body)).sum::<usize>()
}

/// Applies `f` to the `idx`-th block (source order, pre-order). Returns
/// `None` (without calling `f`) when `idx` is out of range.
pub fn with_block_mut<R>(
    p: &mut Program,
    idx: usize,
    f: impl FnOnce(&mut Vec<Stmt>) -> R,
) -> Option<R> {
    let mut slot = Some(f);
    let mut result = None;
    let mut apply = |b: &mut Vec<Stmt>| {
        let f = slot.take().expect("visited once");
        result = Some(f(b));
    };
    let mut n = 0;
    if !walk_blocks(&mut p.main_body, &mut n, idx, &mut apply) {
        for h in p.helpers.iter_mut() {
            if walk_blocks(&mut h.body, &mut n, idx, &mut apply) {
                break;
            }
        }
    }
    result
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

fn walk_expr(e: &mut Expr, n: &mut usize, target: usize, f: &mut dyn FnMut(&mut Expr)) -> bool {
    if *n == target {
        f(e);
        return true;
    }
    *n += 1;
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Deref(_) => false,
        Expr::Index(_, i) => walk_expr(i, n, target, f),
        Expr::Neg(a) | Expr::Not(a) => walk_expr(a, n, target, f),
        Expr::Bin(_, a, b) => walk_expr(a, n, target, f) || walk_expr(b, n, target, f),
        Expr::Call(_, args) => args.iter_mut().any(|a| walk_expr(a, n, target, f)),
    }
}

fn walk_lvalue(
    lv: &mut LValue,
    n: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Expr),
) -> bool {
    match lv {
        LValue::Index(_, i) => walk_expr(i, n, target, f),
        LValue::Var(_) | LValue::Deref(_) => false,
    }
}

fn walk_stmt_exprs(
    stmts: &mut [Stmt],
    n: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Expr),
) -> bool {
    for s in stmts.iter_mut() {
        let hit = match s {
            Stmt::DeclInt { init, .. } => walk_expr(init, n, target, f),
            Stmt::Assign { lhs, rhs, .. } => {
                walk_lvalue(lhs, n, target, f) || walk_expr(rhs, n, target, f)
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                walk_expr(cond, n, target, f)
                    || walk_stmt_exprs(then_s, n, target, f)
                    || walk_stmt_exprs(else_s, n, target, f)
            }
            Stmt::Loop { body, .. } => walk_stmt_exprs(body, n, target, f),
            Stmt::Print(e) | Stmt::ExprStmt(e) => walk_expr(e, n, target, f),
            Stmt::DeclPtr { .. }
            | Stmt::DeclMalloc { .. }
            | Stmt::DeclArr { .. }
            | Stmt::Incr { .. }
            | Stmt::PtrAssign { .. }
            | Stmt::Break
            | Stmt::Continue => false,
        };
        if hit {
            return true;
        }
    }
    false
}

fn count_expr(e: &Expr) -> usize {
    1 + match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Deref(_) => 0,
        Expr::Index(_, i) => count_expr(i),
        Expr::Neg(a) | Expr::Not(a) => count_expr(a),
        Expr::Bin(_, a, b) => count_expr(a) + count_expr(b),
        Expr::Call(_, args) => args.iter().map(count_expr).sum(),
    }
}

fn count_stmt_exprs(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::DeclInt { init, .. } => count_expr(init),
            Stmt::Assign { lhs, rhs, .. } => {
                let lv = match lhs {
                    LValue::Index(_, i) => count_expr(i),
                    _ => 0,
                };
                lv + count_expr(rhs)
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => count_expr(cond) + count_stmt_exprs(then_s) + count_stmt_exprs(else_s),
            Stmt::Loop { body, .. } => count_stmt_exprs(body),
            Stmt::Print(e) | Stmt::ExprStmt(e) => count_expr(e),
            _ => 0,
        })
        .sum()
}

/// Number of expression nodes in the program (nested subexpressions
/// included).
pub fn expr_count(p: &Program) -> usize {
    count_stmt_exprs(&p.main_body)
        + p.helpers
            .iter()
            .map(|h| count_stmt_exprs(&h.body) + count_expr(&h.ret))
            .sum::<usize>()
}

/// Applies `f` to the `idx`-th expression node (source order, pre-order:
/// a parent precedes its children). Returns `None` when out of range.
pub fn with_expr_mut<R>(p: &mut Program, idx: usize, f: impl FnOnce(&mut Expr) -> R) -> Option<R> {
    let mut slot = Some(f);
    let mut result = None;
    let mut apply = |e: &mut Expr| {
        let f = slot.take().expect("visited once");
        result = Some(f(e));
    };
    let mut n = 0;
    if !walk_stmt_exprs(&mut p.main_body, &mut n, idx, &mut apply) {
        for h in p.helpers.iter_mut() {
            if walk_stmt_exprs(&mut h.body, &mut n, idx, &mut apply)
                || walk_expr(&mut h.ret, &mut n, idx, &mut apply)
            {
                break;
            }
        }
    }
    result
}

// ---------------------------------------------------------------------
// Name references (for dead-declaration cleanup)
// ---------------------------------------------------------------------

fn names_in_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(n) | Expr::Deref(n) => {
            out.insert(n.clone());
        }
        Expr::Index(n, i) => {
            out.insert(n.clone());
            names_in_expr(i, out);
        }
        Expr::Neg(a) | Expr::Not(a) => names_in_expr(a, out),
        Expr::Bin(_, a, b) => {
            names_in_expr(a, out);
            names_in_expr(b, out);
        }
        Expr::Call(f, args) => {
            out.insert(f.clone());
            for a in args {
                names_in_expr(a, out);
            }
        }
    }
}

fn names_in_stmts(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::DeclInt { init, .. } => names_in_expr(init, out),
            Stmt::DeclPtr { target, .. } | Stmt::PtrAssign { target, .. } => {
                out.insert(target.clone());
            }
            Stmt::Assign { lhs, rhs, .. } => {
                match lhs {
                    LValue::Var(n) | LValue::Deref(n) => {
                        out.insert(n.clone());
                    }
                    LValue::Index(n, i) => {
                        out.insert(n.clone());
                        names_in_expr(i, out);
                    }
                }
                names_in_expr(rhs, out);
            }
            Stmt::Incr { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                names_in_expr(cond, out);
                names_in_stmts(then_s, out);
                names_in_stmts(else_s, out);
            }
            Stmt::Loop { body, .. } => names_in_stmts(body, out),
            Stmt::Print(e) | Stmt::ExprStmt(e) => names_in_expr(e, out),
            Stmt::DeclMalloc { .. } | Stmt::DeclArr { .. } | Stmt::Break | Stmt::Continue => {}
        }
    }
}

/// Every variable/function name the program's statements and expressions
/// mention. Targets of `&x` and pointer reseats count as references;
/// declarations themselves do not.
pub fn referenced_names(p: &Program) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    names_in_stmts(&p.main_body, &mut out);
    for h in &p.helpers {
        names_in_stmts(&h.body, &mut out);
        names_in_expr(&h.ret, &mut out);
    }
    out
}

/// Whether any *other* part of the program calls helper `helper_idx` (so
/// an otherwise-unused self-recursive helper is still droppable).
pub fn helper_called(p: &Program, helper_idx: usize) -> bool {
    let name = &p.helpers[helper_idx].name;
    let mut names = BTreeSet::new();
    names_in_stmts(&p.main_body, &mut names);
    for (i, h) in p.helpers.iter().enumerate() {
        if i != helper_idx {
            names_in_stmts(&h.body, &mut names);
            names_in_expr(&h.ret, &mut names);
        }
    }
    names.contains(name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Helper, LoopKind};

    fn sample() -> Program {
        Program {
            globals: vec![],
            helpers: vec![Helper {
                name: "f0".into(),
                params: vec!["a".into()],
                recursive: false,
                body: vec![Stmt::Print(Expr::Var("a".into()))],
                ret: Expr::Const(1),
            }],
            main_body: vec![
                Stmt::DeclInt {
                    name: "x".into(),
                    init: Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Const(1)),
                        Box::new(Expr::Const(2)),
                    ),
                },
                Stmt::Loop {
                    kind: LoopKind::For,
                    counter: "c0".into(),
                    bound: 3,
                    body: vec![Stmt::Incr {
                        name: "x".into(),
                        down: false,
                    }],
                },
            ],
        }
    }

    #[test]
    fn block_enumeration_is_stable() {
        let mut p = sample();
        // main body, loop body, helper body.
        assert_eq!(block_count(&p), 3);
        assert_eq!(with_block_mut(&mut p, 0, |b| b.len()), Some(2));
        assert_eq!(with_block_mut(&mut p, 1, |b| b.len()), Some(1));
        assert_eq!(with_block_mut(&mut p, 2, |b| b.len()), Some(1));
        assert_eq!(with_block_mut(&mut p, 3, |b| b.len()), None);
    }

    #[test]
    fn expr_enumeration_is_preorder() {
        let mut p = sample();
        // x init: Bin, 1, 2; helper body print: a; helper ret: 1.
        assert_eq!(expr_count(&p), 5);
        assert_eq!(
            with_expr_mut(&mut p, 0, |e| matches!(e, Expr::Bin(BinOp::Add, _, _))),
            Some(true)
        );
        assert_eq!(
            with_expr_mut(&mut p, 1, |e| matches!(e, Expr::Const(1))),
            Some(true)
        );
        with_expr_mut(&mut p, 0, |e| *e = Expr::Const(9));
        assert_eq!(expr_count(&p), 3);
    }

    #[test]
    fn referenced_names_cover_all_sites() {
        let p = sample();
        let names = referenced_names(&p);
        assert!(names.contains("x"));
        assert!(names.contains("a"));
        assert!(!names.contains("f0"), "f0 is declared, never called");
        assert!(!helper_called(&p, 0));
    }
}
