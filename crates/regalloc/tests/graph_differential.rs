//! Differential test of the dense bit-matrix interference graph against a
//! straightforward `BTreeSet`-adjacency reference implementation (the
//! allocator's pre-bitset representation) on randomized functions.
//!
//! The dense builder fills rows with whole-word ORs of the live-after set
//! and repairs the copy-source and self exceptions afterwards, which is
//! where subtle bugs would hide: a copy's source bit must be cleared only
//! if no *other* def site of the same register legitimately added it. The
//! random functions therefore deliberately redefine existing registers
//! (including copy destinations) so multiple def sites per register, with
//! different skip sources, are common.
//!
//! Random inputs come from an in-tree xorshift64* generator: every case is
//! reproducible from the fixed seed and no external crates are needed (the
//! build must work offline).

use cfg::{for_each_instr_backwards, liveness, Cfg, Liveness};
use ir::{BinOp, BlockId, Function, FunctionBuilder, Instr, Reg};
use regalloc::interference_graph;
use std::collections::BTreeSet;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a function with random register dataflow: fresh defs,
/// redefinitions of existing registers, copies (fresh- and
/// existing-destination), and random multi-block control flow.
fn random_function(rng: &mut Rng) -> Function {
    let arity = rng.below(4);
    let mut b = FunctionBuilder::new("f", arity);
    let nblocks = 1 + rng.below(6);
    for _ in 1..nblocks {
        b.new_block();
    }
    // Registers defined so far (params count).
    let mut regs: Vec<Reg> = (0..arity as u32).map(Reg).collect();
    if regs.is_empty() {
        b.switch_to(BlockId(0));
        regs.push(b.iconst(1));
    }
    for bi in 0..nblocks {
        b.switch_to(BlockId(bi as u32));
        if b.is_terminated() {
            continue;
        }
        for _ in 0..rng.below(8) {
            let pick = |rng: &mut Rng, regs: &[Reg]| regs[rng.below(regs.len())];
            match rng.below(5) {
                0 => regs.push(b.iconst(rng.below(100) as i64)),
                1 => {
                    let (l, r) = (pick(rng, &regs), pick(rng, &regs));
                    regs.push(b.binary(BinOp::Add, l, r));
                }
                2 => {
                    // Redefine an existing register.
                    let (d, l, r) = (pick(rng, &regs), pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Binary {
                        op: BinOp::Mul,
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                }
                3 => {
                    let s = pick(rng, &regs);
                    regs.push(b.copy(s));
                }
                _ => {
                    // Copy into an existing register: a second (or later)
                    // def site whose skip source varies per site.
                    let (d, s) = (pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Copy { dst: d, src: s });
                }
            }
        }
        let v = regs[rng.below(regs.len())];
        match rng.below(3) {
            0 => b.ret(None),
            1 => b.jump(BlockId(rng.below(nblocks) as u32)),
            _ => b.branch(
                v,
                BlockId(rng.below(nblocks) as u32),
                BlockId(rng.below(nblocks) as u32),
            ),
        }
    }
    b.finish()
}

/// The reference implementation: the exact edge rule the allocator used
/// when adjacency was `Vec<BTreeSet<u32>>`, member-by-member.
fn reference_graph(func: &Function, cfg: &Cfg, live: &Liveness) -> Vec<BTreeSet<u32>> {
    let n = func.next_reg as usize;
    let mut adj = vec![BTreeSet::new(); n];
    fn add(adj: &mut [BTreeSet<u32>], a: u32, b: u32) {
        if a != b {
            adj[a as usize].insert(b);
            adj[b as usize].insert(a);
        }
    }
    for a in 0..func.arity as u32 {
        for b in (a + 1)..func.arity as u32 {
            add(&mut adj, a, b);
        }
    }
    for &b in &cfg.rpo {
        for_each_instr_backwards(func, live, b, |_, instr, live_after| {
            if let Some(d) = instr.def() {
                let skip = match instr {
                    Instr::Copy { src, .. } => Some(*src),
                    _ => None,
                };
                for r in live_after.iter() {
                    if Some(r) != skip && r != d {
                        add(&mut adj, d.0, r.0);
                    }
                }
            }
        });
    }
    adj
}

#[test]
fn bitmatrix_graph_matches_btreeset_reference() {
    let mut rng = Rng::new(0x1F7E_4FE4_CE00_D00D);
    for case in 0..500 {
        let func = random_function(&mut rng);
        let cfg = Cfg::build(&func);
        let live = liveness(&func, &cfg);
        let dense = interference_graph(&func, &cfg, &live);
        let reference = reference_graph(&func, &cfg, &live);
        assert_eq!(dense.len(), reference.len(), "case {case}: node counts");
        for a in 0..reference.len() as u32 {
            let dense_row: Vec<u32> = dense.row_iter(a).collect();
            let ref_row: Vec<u32> = reference[a as usize].iter().copied().collect();
            assert_eq!(
                dense_row, ref_row,
                "case {case}: adjacency of r{a} diverged\n{func:?}"
            );
            assert_eq!(
                dense.degree(a),
                reference[a as usize].len(),
                "case {case}: degree of r{a} diverged"
            );
            for &b in &ref_row {
                assert!(
                    dense.contains(a, b) && dense.contains(b, a),
                    "case {case}: edge {{r{a}, r{b}}} not symmetric in the matrix"
                );
            }
        }
    }
}

/// Copies never produce an interference edge to their source from the
/// copy site itself, but a genuine edge added at another def site must
/// survive the copy-site repair. This pins the exact scenario the
/// word-OR builder has to get right.
#[test]
fn copy_source_edge_survives_other_def_sites() {
    // b0: r_d = r_x + r_y  (r_s live after -> edge {d, s})
    //     r_d = copy r_s   (skip must NOT erase the edge)
    //     ret r_d + r_s
    let mut b = FunctionBuilder::new("f", 0);
    let x = b.iconst(1);
    let y = b.iconst(2);
    let s = b.iconst(3);
    let d = b.binary(BinOp::Add, x, y);
    let keep = b.binary(BinOp::Add, d, s); // d's first def is live here, s after
    b.emit(Instr::Copy { dst: d, src: s });
    let out = b.binary(BinOp::Add, d, keep);
    b.ret(Some(out));
    let func = b.finish();
    let cfg = Cfg::build(&func);
    let live = liveness(&func, &cfg);
    let dense = interference_graph(&func, &cfg, &live);
    let reference = reference_graph(&func, &cfg, &live);
    assert_eq!(
        dense.contains(d.0, s.0),
        reference[d.index()].contains(&s.0),
        "copy-source repair disagrees with the reference"
    );
    // And the trivial direction: a copy whose source is only ever a copy
    // source produces no {dst, src} edge.
    let mut b = FunctionBuilder::new("g", 0);
    let s = b.iconst(7);
    let d = b.copy(s);
    b.ret(Some(d));
    let func = b.finish();
    let cfg = Cfg::build(&func);
    let live = liveness(&func, &cfg);
    let dense = interference_graph(&func, &cfg, &live);
    assert!(!dense.contains(d.0, s.0), "pure copy must not interfere");
}
