//! Behavioural tests for the register allocator.

use ir::{BinOp, FunctionBuilder, Instr, Module};
use regalloc::{allocate, AllocOptions};
use vm::{Vm, VmOptions};

fn check(src: &str, opts: &AllocOptions) -> (vm::Outcome, vm::Outcome, regalloc::AllocReport) {
    let mut m = minic::compile(src).expect("compile");
    analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
    let before = Vm::run_main(&m, VmOptions::default()).expect("run before");
    let report = allocate(&mut m, opts);
    ir::validate(&m).expect("valid after allocation");
    let after = Vm::run_main(&m, VmOptions::default()).expect("run after");
    assert_eq!(before.output, after.output, "behaviour preserved");
    (before, after, report)
}

const MANY_LIVE: &str = r#"
int main() {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
    int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
    int s1 = a + b; int s2 = c + d; int s3 = e + f; int s4 = g + h;
    int s5 = i + j;
    print_int(s1 + s2 + s3 + s4 + s5 + a + b + c + d + e + f + g + h + i + j);
    return 0;
}
"#;

#[test]
fn fits_in_default_registers_without_spills() {
    let (_, _, report) = check(MANY_LIVE, &AllocOptions::default());
    assert_eq!(report.spilled, 0);
}

#[test]
fn tight_register_file_forces_spills_but_stays_correct() {
    let opts = AllocOptions {
        num_regs: 4,
        ..Default::default()
    };
    let (before, after, report) = check(MANY_LIVE, &opts);
    assert!(
        report.spilled > 0,
        "4 registers cannot hold 10+ live values"
    );
    // Spill traffic shows up as extra loads/stores.
    assert!(after.counts.loads > before.counts.loads);
    assert!(after.counts.stores > before.counts.stores);
}

#[test]
fn coalescing_removes_promotion_style_copies() {
    // The assignments produce chains of copies; coalescing should remove
    // essentially all of them.
    let src = r#"
int main() {
    int x = 0;
    int i;
    for (i = 0; i < 100; i++) {
        x = x + 1;
    }
    print_int(x);
    return 0;
}
"#;
    let (before, after, report) = check(src, &AllocOptions::default());
    assert!(report.coalesced > 0);
    assert!(
        after.counts.copies < before.counts.copies,
        "copies {} -> {}",
        before.counts.copies,
        after.counts.copies
    );
}

#[test]
fn functions_with_parameters_allocate_correctly() {
    let src = r#"
int combine(int a, int b, int c, int d) {
    return a * 1000 + b * 100 + c * 10 + d;
}
int main() {
    print_int(combine(1, 2, 3, 4));
    return 0;
}
"#;
    let (_, after, _) = check(src, &AllocOptions::default());
    assert_eq!(after.output, vec!["1234"]);
}

#[test]
fn parameters_spill_when_registers_are_scarce() {
    let src = r#"
int mix(int a, int b, int c) {
    int x = a + b;
    int y = b + c;
    int z = a + c;
    int w = x * y + z;
    a = a + w;
    return a + x + y + z;
}
int main() {
    print_int(mix(3, 5, 7));
    return 0;
}
"#;
    let opts = AllocOptions {
        num_regs: 3,
        ..Default::default()
    };
    let (_, after, _) = check(src, &opts);
    assert_eq!(after.output, vec!["139"]);
    // All functions fit in 3 registers afterwards.
}

#[test]
fn allocated_code_respects_register_bound() {
    let src = r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(10));
    return 0;
}
"#;
    let mut m = minic::compile(src).unwrap();
    let opts = AllocOptions {
        num_regs: 8,
        ..Default::default()
    };
    allocate(&mut m, &opts);
    for f in &m.funcs {
        assert!(f.next_reg <= 8, "@{} uses {} registers", f.name, f.next_reg);
    }
    let out = Vm::run_main(&m, VmOptions::default()).unwrap();
    assert_eq!(out.output, vec!["55"]);
}

#[test]
fn spilled_loop_variables_keep_semantics() {
    let src = r#"
int main() {
    int i; int j;
    int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            a = a + b;
            b = b + c;
            c = c + d;
            d = d + e;
            e = e + 1;
        }
    }
    print_int(a); print_int(b); print_int(c); print_int(d); print_int(e);
    return 0;
}
"#;
    let opts = AllocOptions {
        num_regs: 4,
        ..Default::default()
    };
    let (_, _, report) = check(src, &opts);
    assert!(report.spilled > 0);
}

#[test]
fn dead_rematerializable_def_does_not_livelock() {
    // Found by the differential fuzzer (promo-fuzz seed 0xc10039): a
    // constant-like def with no remaining uses but full interference
    // degree. Its spill cost is the lowest on the board, so select picks
    // it as the victim every round — and rematerialization used to
    // "handle" it without changing the body (no uses to rewrite), leaving
    // the node in the graph and the allocator re-spilling it until the
    // convergence assert fired. Rematerialization must delete the dead
    // def so every round makes progress.
    let mut b = FunctionBuilder::new("main", 0);
    b.returns_value();
    let c1 = b.iconst(1);
    let c2 = b.iconst(2);
    let c3 = b.iconst(3);
    let c4 = b.iconst(4);
    let _dead = b.iconst(42); // never used; interferes with c1..c4
    let s = b.binary(BinOp::Add, c1, c2);
    let t = b.binary(BinOp::Add, c3, c4);
    let u = b.binary(BinOp::Add, s, t);
    b.ret(Some(u));
    let mut m = Module::new();
    m.add_func(b.finish());
    let opts = AllocOptions {
        num_regs: 4,
        max_rounds: 8,
    };
    let report = allocate(&mut m, &opts);
    assert!(
        report.rematerialized >= 1,
        "the dead constant must be the spill victim (got {report:?})"
    );
    assert_eq!(report.spilled, 0, "nothing should reach memory");
    ir::validate(&m).expect("valid after allocation");
    // The dead def is gone, not merely recolored.
    let main = &m.funcs[0];
    let consts: Vec<i64> = main
        .blocks
        .iter()
        .flat_map(|bl| &bl.instrs)
        .filter_map(|i| match i {
            Instr::IConst { value, .. } => Some(*value),
            _ => None,
        })
        .collect();
    assert!(!consts.contains(&42), "dead def deleted, found {consts:?}");
    let out = Vm::run_main(&m, VmOptions::default()).expect("runs");
    assert_eq!(out.exit_code, 10);
}

#[test]
fn double_values_survive_allocation() {
    let src = r#"
int main() {
    double a = 1.5; double b = 2.5; double c = 4.0;
    double d = a * b + c;
    print_float(d);
    print_float(sqrt(c));
    return 0;
}
"#;
    let (_, after, _) = check(
        src,
        &AllocOptions {
            num_regs: 4,
            ..Default::default()
        },
    );
    assert_eq!(after.output, vec!["7.750000", "2.000000"]);
}
