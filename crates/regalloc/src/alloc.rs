//! Chaitin–Briggs graph-coloring register allocation.
//!
//! The paper's compiler uses "a graph-coloring allocator [Briggs, Cooper &
//! Torczon]" whose copy coalescing "is quite effective at eliminating" the
//! copies promotion introduces, and whose spilling can *undo* a promotion
//! when demand exceeds supply (the `water` anomaly). This allocator
//! reproduces both behaviours:
//!
//! * interference graph from backward liveness (copies interfere with all
//!   of `live-after` except their source);
//! * Briggs-conservative coalescing of register copies;
//! * simplify/select with optimistic coloring and loop-depth-weighted
//!   spill costs;
//! * spill code through compiler-introduced **spill tags**, so spill
//!   traffic shows up in the measured load/store counts exactly as it does
//!   in the paper's figures.
//!
//! Allocation is split into a per-function core ([`allocate_function_core`])
//! that touches only the function body plus a read-only tag-table snapshot,
//! and a sequential commit ([`commit_spills`]) that interns the spill tags
//! the core requested. The core hands out *provisional* tag ids (at or
//! above [`PROVISIONAL_SPILL_BASE`]); committing in function-index order
//! reproduces exactly the tag table a sequential allocation would build,
//! which is what lets the driver fan functions out across threads without
//! perturbing printed IL.

use crate::matrix::BitMatrix;
use cfg::{for_each_instr_backwards_in, Cfg, FunctionAnalyses, Liveness, RegSet};
use ir::{BlockId, FuncId, Function, Instr, Module, Reg, RewriteBuf, TagId, TagKind, TagTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Reusable allocator state for [`allocate_function_core_traced`]: the
/// interference graph and coalescer's class adjacency (the two big
/// [`BitMatrix`] builds), every per-round simplify/select vector, and the
/// [`RewriteBuf`] the spill inserter rebuilds blocks through. One of these
/// lives per pipeline worker; in the steady state a round allocates
/// nothing but the (rare, deliberately `BTreeSet`-based) spill bookkeeping.
pub struct AllocScratch {
    graph: BitMatrix,
    graph_version: Option<u64>,
    class_adj: BitMatrix,
    parent: Vec<u32>,
    copies: Vec<(Reg, Reg)>,
    other_adj: Vec<u32>,
    dirty: Vec<BlockId>,
    costs: Vec<f64>,
    degree: Vec<usize>,
    removed: Vec<bool>,
    stack: Vec<u32>,
    work: Vec<u32>,
    color: Vec<Option<u32>>,
    used_colors: Vec<bool>,
    shadows: Vec<Reg>,
    used_regs: Vec<u32>,
    remap_tmp: Vec<Reg>,
    occurs: RegSet,
    rw: RewriteBuf,
}

impl Default for AllocScratch {
    fn default() -> Self {
        AllocScratch {
            graph: BitMatrix::new(0),
            graph_version: None,
            class_adj: BitMatrix::new(0),
            parent: Vec::new(),
            copies: Vec::new(),
            other_adj: Vec::new(),
            dirty: Vec::new(),
            costs: Vec::new(),
            degree: Vec::new(),
            removed: Vec::new(),
            stack: Vec::new(),
            work: Vec::new(),
            color: Vec::new(),
            used_colors: Vec::new(),
            shadows: Vec::new(),
            used_regs: Vec::new(),
            remap_tmp: Vec::new(),
            occurs: RegSet::new(0),
            rw: RewriteBuf::new(),
        }
    }
}

/// Allocation parameters.
#[derive(Debug, Clone)]
pub struct AllocOptions {
    /// Number of machine registers (colors).
    pub num_regs: usize,
    /// Safety bound on spill-and-retry rounds.
    pub max_rounds: usize,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            num_regs: 32,
            max_rounds: 24,
        }
    }
}

/// What allocation did to one function (or, summed, to a module).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocReport {
    /// Copies removed by coalescing.
    pub coalesced: usize,
    /// Virtual registers spilled to memory.
    pub spilled: usize,
    /// Virtual registers rematerialized instead of spilled (their single
    /// definition is a constant-like instruction that is cheaper to
    /// recompute than to reload).
    pub rematerialized: usize,
    /// Spill loads inserted (static count).
    pub spill_loads: usize,
    /// Spill stores inserted (static count).
    pub spill_stores: usize,
    /// Simplify/select rounds run.
    pub rounds: usize,
}

/// First provisional spill-tag id. Real tag ids are interned densely from
/// zero; anything at or above this base is a placeholder that
/// [`commit_spills`] must replace.
pub const PROVISIONAL_SPILL_BASE: u32 = 0x8000_0000;

/// A spill tag requested by [`allocate_function_core`] but not yet
/// interned in the module's tag table.
#[derive(Debug, Clone)]
pub struct PendingSpill {
    /// The placeholder id the core wrote into the function's spill code.
    pub provisional: TagId,
    /// The name the real tag must be interned under.
    pub name: String,
}

/// Builds the interference graph as a dense [`BitMatrix`]: parameters
/// interfere pairwise, and every definition interferes with everything
/// live after it — except a copy's own source (so coalescing can merge the
/// pair) and the defined register itself.
///
/// Each def site ORs the whole `live_after` bitset into the def's row in
/// one word-wise pass, then repairs the two exceptions. The repair must be
/// careful about the copy-source bit: a *different* def site of the same
/// register may already have added a legitimate edge to this copy's
/// source, so the bit is only cleared if it was absent before the OR.
pub fn interference_graph(func: &Function, cfg: &Cfg, live: &Liveness) -> BitMatrix {
    let mut g = BitMatrix::new(0);
    interference_graph_in(func, cfg, live, &mut RegSet::new(0), &mut g);
    g
}

/// [`interference_graph`] into a caller-owned matrix, reusing its backing
/// storage (the scratch-arena path). `cursor` is the walk's live-after
/// working set; reusing it across builds keeps the per-block walk
/// allocation-free.
pub fn interference_graph_in(
    func: &Function,
    cfg: &Cfg,
    live: &Liveness,
    cursor: &mut RegSet,
    g: &mut BitMatrix,
) {
    let n = func.next_reg as usize;
    g.reset(n);
    // Parameters all interfere pairwise (they hold distinct incoming
    // values at entry). Directed bits; finalize mirrors them.
    for a in 0..func.arity as u32 {
        for b in (a + 1)..func.arity as u32 {
            g.set_raw(a, b);
        }
    }
    for &b in &cfg.rpo {
        for_each_instr_backwards_in(func, live, b, cursor, |_, instr, live_after| {
            if let Some(d) = instr.def() {
                let skip = match instr {
                    Instr::Copy { src, .. } => Some(*src),
                    _ => None,
                };
                let skip_was_set = skip.map(|s| g.contains(d.0, s.0)).unwrap_or(false);
                g.or_row_words(d.0, live_after.words());
                if let Some(s) = skip {
                    if !skip_was_set && s != d {
                        g.clear_raw(d.0, s.0);
                    }
                }
                // A register never interferes with itself; no def site can
                // have set this bit legitimately.
                g.clear_raw(d.0, d.0);
            }
        });
    }
    g.finalize_symmetric();
}

/// Ensures `graph` holds the interference graph of the current body,
/// keyed on the shared cache's body version. The CFG and liveness come out
/// of `analyses` (warm after the pass chain); only the graph itself is
/// allocator-private. The payoff is the coalescing fixpoint: its final
/// sweep (the one that merges nothing) leaves a fresh graph behind, which
/// the simplify/select phase then reuses instead of rebuilding.
fn ensure_graph(
    version: &mut Option<u64>,
    graph: &mut BitMatrix,
    cursor: &mut RegSet,
    func: &Function,
    analyses: &mut FunctionAnalyses,
) {
    let v = analyses.body_version();
    if *version != Some(v) {
        let (cfg, live) = analyses.cfg_liveness(func);
        interference_graph_in(func, cfg, live, cursor, graph);
        *version = Some(v);
    }
}

/// Per-register occurrence costs, weighted 10^loop-depth. The dominator
/// tree and loop forest come from the shared cache: allocation never
/// changes the block structure, so every spill round reuses one build.
fn spill_costs(func: &Function, analyses: &mut FunctionAnalyses, cost: &mut Vec<f64>) {
    let (cfg, _, forest) = analyses.cfg_dom_forest(func);
    cost.clear();
    cost.resize(func.next_reg as usize, 0.0);
    for bid in func.block_ids() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        let depth = forest.block_loop[bid.index()]
            .map(|l| forest.get(l).depth)
            .unwrap_or(0);
        let w = 10f64.powi(depth as i32);
        for instr in &func.block(bid).instrs {
            if let Some(d) = instr.def() {
                cost[d.index()] += w;
            }
            instr.visit_uses(|r| cost[r.index()] += w);
        }
    }
}

/// One conservative-coalescing sweep over a prebuilt interference graph
/// (the caller provides it out of its graph cache, so the sweep that
/// reaches the fixpoint shares its build with the simplify/select phase
/// that follows). Returns copies eliminated; the blocks whose instructions
/// actually changed are appended to `dirty` so the caller can scope the
/// liveness invalidation.
#[allow(clippy::too_many_arguments)]
fn coalesce_once(
    func: &mut Function,
    k: usize,
    g: &BitMatrix,
    class_adj: &mut BitMatrix,
    parent: &mut Vec<u32>,
    copies: &mut Vec<(Reg, Reg)>,
    other_adj: &mut Vec<u32>,
    dirty: &mut Vec<BlockId>,
) -> usize {
    let nregs = func.next_reg as usize;
    let precolored = func.arity as u32;
    // Union-find over registers.
    parent.clear();
    parent.extend(0..nregs as u32);
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut merged = 0;
    // Collect copies.
    copies.clear();
    copies.extend(
        func.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Copy { dst, src } => Some((*dst, *src)),
                _ => None,
            }),
    );
    // Track adjacency unions as we merge (approximation: recompute the
    // union of original neighbor sets of the merged classes).
    class_adj.copy_from(g);
    for ci in 0..copies.len() {
        let (dst, src) = copies[ci];
        let a = find(parent, dst.0);
        let b = find(parent, src.0);
        if a == b {
            merged += 1; // already identical: the copy is removable
            continue;
        }
        if a < precolored && b < precolored {
            continue;
        }
        if class_adj.contains(a, b) || g.contains(a, b) {
            continue;
        }
        // Conservative-coalescing tests: Briggs (the merged node must have
        // < k neighbors of significant degree) or George (every neighbor
        // of one side either already interferes with the other side or is
        // trivially colorable).
        let briggs = class_adj.briggs_union_ok(a, b, k);
        let george = |x: u32, y: u32| {
            class_adj
                .row_iter(x)
                .all(|t| class_adj.degree(t) < k || class_adj.contains(y, t))
        };
        if !briggs && !george(a, b) && !george(b, a) {
            continue;
        }
        // Merge b into a, preferring a precolored representative.
        let (rep, other) = if b < precolored { (b, a) } else { (a, b) };
        parent[other as usize] = rep;
        other_adj.clear();
        other_adj.extend(class_adj.row_iter(other));
        for &n in other_adj.iter() {
            class_adj.remove_edge(n, other);
            class_adj.insert_edge(n, rep);
        }
        merged += 1;
    }
    if merged == 0 {
        return 0;
    }
    // Rewrite registers to representatives and drop identity copies.
    for (bi, block) in func.blocks.iter_mut().enumerate() {
        let mut touched = false;
        for instr in &mut block.instrs {
            if let Some(d) = instr.def_mut() {
                let rep = Reg(find(parent, d.0));
                if *d != rep {
                    *d = rep;
                    touched = true;
                }
            }
            instr.visit_uses_mut(|r| {
                let rep = Reg(find(parent, r.0));
                if *r != rep {
                    *r = rep;
                    touched = true;
                }
            });
        }
        let before = block.instrs.len();
        block
            .instrs
            .retain(|i| !matches!(i, Instr::Copy { dst, src } if dst == src));
        if touched || block.instrs.len() != before {
            dirty.push(BlockId(bi as u32));
        }
    }
    merged
}

/// A victim whose sole definition is constant-like is *rematerialized*:
/// each use gets a fresh recomputation instead of a memory reload. This is
/// the Chaitin/Briggs treatment of never-killed values and is essential
/// for honest spill counts — most high-degree values in optimized code are
/// loop-hoisted constants and addresses.
fn try_rematerialize(
    func: &mut Function,
    victims: &mut BTreeSet<u32>,
    temps: &mut BTreeSet<u32>,
    dirty: &mut BTreeSet<u32>,
) -> usize {
    // Map victim -> its defining instruction if it has exactly one def and
    // that def is constant-like.
    let mut def_count: BTreeMap<u32, usize> = BTreeMap::new();
    let mut def_instr: BTreeMap<u32, Instr> = BTreeMap::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                if victims.contains(&d.0) {
                    *def_count.entry(d.0).or_default() += 1;
                    def_instr.insert(d.0, instr.clone());
                }
            }
        }
    }
    let rematable: BTreeMap<u32, Instr> = def_instr
        .into_iter()
        .filter(|(v, i)| {
            def_count.get(v) == Some(&1)
                && matches!(
                    i,
                    Instr::IConst { .. }
                        | Instr::FConst { .. }
                        | Instr::FuncAddr { .. }
                        | Instr::Lea { .. }
                )
        })
        .collect();
    if rematable.is_empty() {
        return 0;
    }
    for bi in 0..func.blocks.len() {
        let mut i = 0;
        while i < func.blocks[bi].instrs.len() {
            let instr = &func.blocks[bi].instrs[i];
            // Leave the original definitions alone (they become dead and
            // are cheap).
            if let Some(d) = instr.def() {
                if rematable.contains_key(&d.0) && instr == &rematable[&d.0] {
                    i += 1;
                    continue;
                }
            }
            let mut used: Vec<u32> = Vec::new();
            instr.visit_uses(|r| {
                if rematable.contains_key(&r.0) && !used.contains(&r.0) {
                    used.push(r.0);
                }
            });
            if used.is_empty() {
                i += 1;
                continue;
            }
            let mut remap: BTreeMap<u32, Reg> = BTreeMap::new();
            dirty.insert(bi as u32);
            for &v in &used {
                let tmp = Reg(func.next_reg);
                func.next_reg += 1;
                temps.insert(tmp.0);
                let mut clone = rematable[&v].clone();
                if let Some(d) = clone.def_mut() {
                    *d = tmp;
                }
                func.blocks[bi].instrs.insert(i, clone);
                i += 1;
                remap.insert(v, tmp);
            }
            let instr = &mut func.blocks[bi].instrs[i];
            instr.visit_uses_mut(|r| {
                if let Some(t) = remap.get(&r.0) {
                    *r = *t;
                }
            });
            i += 1;
        }
    }
    // Drop the original definitions: every use now has a fresh
    // recomputation, so they are dead — and a dead def is not merely
    // wasteful. It keeps its node (and full degree) in the interference
    // graph, so select can pick it as the victim again next round, and
    // rematerialization would "handle" it without touching the body:
    // allocation livelocks re-spilling the same register forever.
    for (bi, block) in func.blocks.iter_mut().enumerate() {
        let before = block.instrs.len();
        block
            .instrs
            .retain(|instr| !matches!(instr.def(), Some(d) if rematable.get(&d.0) == Some(instr)));
        if block.instrs.len() != before {
            dirty.insert(bi as u32);
        }
    }
    let n = rematable.len();
    for v in rematable.keys() {
        victims.remove(v);
    }
    n
}

/// Inserts spill code for `victims`; returns (loads, stores) inserted and
/// the short-range temporaries created (which must never be spill
/// candidates themselves, or allocation would not terminate).
///
/// Spill tags are *not* interned here: each victim gets a provisional id
/// recorded in `pending`, so the caller (or the driver's parallel commit)
/// can intern the real tags in deterministic function order.
#[allow(clippy::too_many_arguments)]
fn insert_spill_code(
    func: &mut Function,
    victims: &BTreeSet<u32>,
    spill_base: usize,
    pending: &mut Vec<PendingSpill>,
    dirty: &mut BTreeSet<u32>,
    rw: &mut RewriteBuf,
    used_regs: &mut Vec<u32>,
    remap_tmp: &mut Vec<Reg>,
) -> (usize, usize, BTreeSet<u32>) {
    // One spill tag per victim, named sequentially over all spill tags this
    // function has ever received (pre-existing `spill_base` plus the ones
    // requested so far), so names stay unique across spill rounds.
    let mut tags = BTreeMap::new();
    for &v in victims {
        let name = format!("{}.spill{}", func.name, spill_base + pending.len());
        let provisional = TagId(PROVISIONAL_SPILL_BASE + pending.len() as u32);
        pending.push(PendingSpill { provisional, name });
        tags.insert(v, provisional);
    }
    let arity = func.arity as u32;
    let mut loads = 0;
    let mut stores = 0;
    let mut temps: BTreeSet<u32> = BTreeSet::new();
    // Spilled parameters are stored once on entry; one splice preserves the
    // order the old per-element `insert(0, ..)` loop produced (descending
    // victim number at the block head).
    let entry = func.entry;
    let spilled_params = victims.iter().rev().filter(|&&v| v < arity).count();
    if spilled_params > 0 {
        func.block_mut(entry).instrs.splice(
            0..0,
            victims
                .iter()
                .rev()
                .filter(|&&v| v < arity)
                .map(|&v| Instr::SStore {
                    src: Reg(v),
                    tag: tags[&v],
                }),
        );
        stores += spilled_params;
        dirty.insert(entry.0);
    }
    // Rebuild each block in one retain-style sweep: reloads go out before
    // the rewritten instruction, the post-def store right after it.
    let mut next_reg = func.next_reg;
    for bi in 0..func.blocks.len() {
        rw.rebuild(&mut func.blocks[bi], |mut instr, out| {
            // Pass the entry stores just inserted through untouched.
            if let Instr::SStore { src, tag } = &instr {
                if tags.get(&src.0) == Some(tag) {
                    out.push(instr);
                    return;
                }
            }
            used_regs.clear();
            instr.visit_uses(|r| {
                if victims.contains(&r.0) && !used_regs.contains(&r.0) {
                    used_regs.push(r.0);
                }
            });
            let def = instr.def().filter(|d| victims.contains(&d.0));
            if used_regs.is_empty() && def.is_none() {
                out.push(instr);
                return;
            }
            dirty.insert(bi as u32);
            // Loads before: one fresh temp per distinct spilled use.
            remap_tmp.clear();
            for &v in used_regs.iter() {
                let tmp = Reg(next_reg);
                next_reg += 1;
                temps.insert(tmp.0);
                remap_tmp.push(tmp);
                out.push(Instr::SLoad {
                    dst: tmp,
                    tag: tags[&v],
                });
                loads += 1;
            }
            instr.visit_uses_mut(|r| {
                if let Some(pos) = used_regs.iter().position(|&v| v == r.0) {
                    *r = remap_tmp[pos];
                }
            });
            match def {
                Some(d) => {
                    let tmp = Reg(next_reg);
                    next_reg += 1;
                    temps.insert(tmp.0);
                    *instr.def_mut().expect("def checked") = tmp;
                    out.push(instr);
                    // A terminator cannot define a register, so storing
                    // after is always legal.
                    out.push(Instr::SStore {
                        src: tmp,
                        tag: tags[&d.0],
                    });
                    stores += 1;
                }
                None => out.push(instr),
            }
        });
    }
    func.next_reg = next_reg;
    (loads, stores, temps)
}

/// Allocates one function onto `opts.num_regs` registers, using only a
/// read-only snapshot of the tag table. Spill tags the function needs are
/// returned through `pending` as provisional ids; the caller must intern
/// them with [`commit_spills`] before the module is printed, validated, or
/// run.
///
/// # Panics
///
/// Panics if the function's arity exceeds the register count or if
/// allocation fails to converge within `opts.max_rounds`.
pub fn allocate_function_core(
    tags: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    opts: &AllocOptions,
    pending: &mut Vec<PendingSpill>,
    analyses: &mut FunctionAnalyses,
) -> AllocReport {
    allocate_function_core_traced(
        tags,
        func,
        func_id,
        opts,
        pending,
        analyses,
        &mut AllocScratch::default(),
        &mut trace::FuncTrace::off(),
    )
}

/// [`allocate_function_core`] with remark emission: when tracing is
/// enabled, each spill victim is reported as a
/// [`trace::Remark::Spilled`] with the simplify/select round that demanded
/// it, and the net spill-code insertion lands as a `regalloc` delta.
#[allow(clippy::too_many_arguments)]
pub fn allocate_function_core_traced(
    tags: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    opts: &AllocOptions,
    pending: &mut Vec<PendingSpill>,
    analyses: &mut FunctionAnalyses,
    scratch: &mut AllocScratch,
    tr: &mut trace::FuncTrace,
) -> AllocReport {
    let AllocScratch {
        graph,
        graph_version,
        class_adj,
        parent,
        copies,
        other_adj,
        dirty,
        costs,
        degree,
        removed,
        stack,
        work,
        color,
        used_colors,
        shadows,
        used_regs,
        remap_tmp,
        occurs,
        rw,
    } = scratch;
    // Versions are per-`FunctionAnalyses`; a cached graph from a previous
    // function must never be mistaken for this one's.
    *graph_version = None;
    // Seed the before-count from the stats cache when the preceding
    // delta stage left one (the fused chain always does), else scan.
    let stats_before = if tr.enabled() {
        Some(match tr.cached_stats() {
            Some((instrs, loads, stores)) => ir::BodyStats {
                instrs,
                loads,
                stores,
            },
            None => func.body_stats(),
        })
    } else {
        None
    };
    let mut report = AllocReport::default();
    let k = opts.num_regs;
    assert!(
        func.arity <= k,
        "@{}: arity {} exceeds {k} registers",
        func.name,
        func.arity
    );
    // Spill tags this function already owns (normally zero; nonzero only if
    // allocation is re-run on an already-allocated module).
    let spill_base = tags
        .iter()
        .filter(|(_, t)| matches!(t.kind, TagKind::Spill { owner } if owner == func_id.0))
        .count();
    let mut no_spill: BTreeSet<u32> = BTreeSet::new();
    loop {
        report.rounds += 1;
        // Decouple parameter values from their fixed incoming registers:
        // each param is copied into a fresh allocatable vreg at entry and
        // the body uses only the vreg. Under low pressure coalescing
        // merges the pair back (zero cost); under high pressure the vreg
        // can spill — leaving a precolored register live across the whole
        // function would make tight functions uncolorable. This runs at
        // the start of *every* round because pre-spill coalescing may
        // legitimately undo it; once spilling starts, coalescing freezes
        // and the decoupling sticks.
        {
            let arity = func.arity as u32;
            if arity > 0 {
                shadows.clear();
                shadows.extend((0..arity).map(|_| func.new_reg()));
                debug_assert!(dirty.is_empty());
                for (bi, block) in func.blocks.iter_mut().enumerate() {
                    let mut touched = false;
                    for instr in &mut block.instrs {
                        if let Some(d) = instr.def_mut() {
                            if d.0 < arity {
                                *d = shadows[d.0 as usize];
                                touched = true;
                            }
                        }
                        instr.visit_uses_mut(|r| {
                            if r.0 < arity {
                                *r = shadows[r.0 as usize];
                                touched = true;
                            }
                        });
                    }
                    if touched {
                        dirty.push(BlockId(bi as u32));
                    }
                }
                let entry = func.entry;
                // One splice in forward order matches the old reversed
                // `insert(0, ..)` loop exactly.
                func.block_mut(entry).instrs.splice(
                    0..0,
                    shadows.iter().enumerate().map(|(i, &v)| Instr::Copy {
                        dst: v,
                        src: Reg(i as u32),
                    }),
                );
                dirty.push(entry);
                analyses.note_body_changed_blocks(dirty.drain(..));
            }
        }
        if std::env::var("REGALLOC_DEBUG").is_ok() {
            eprintln!(
                "round {}: instrs={} next_reg={}",
                report.rounds,
                func.instr_count(),
                func.next_reg
            );
        }
        assert!(
            report.rounds <= opts.max_rounds,
            "@{}: register allocation did not converge",
            func.name
        );
        // Coalesce until stable — but only before any spill round.
        // Iterating coalescing against spilling can oscillate (a merge
        // makes the graph uncolorable, spill code re-enables the merge,
        // ...), so once spill code exists, coalescing is frozen: the
        // classic iterated-coalescing discipline.
        if report.spilled == 0 {
            debug_assert!(dirty.is_empty());
            loop {
                ensure_graph(graph_version, graph, occurs, func, analyses);
                let c = coalesce_once(func, k, graph, class_adj, parent, copies, other_adj, dirty);
                report.coalesced += c;
                if c == 0 {
                    break;
                }
                analyses.note_body_changed_blocks(dirty.drain(..));
            }
        }
        // The final coalescing sweep merged nothing, so its graph describes
        // the current body: ensure_graph() is a no-op there and the build
        // is shared with simplify/select below.
        ensure_graph(graph_version, graph, occurs, func, analyses);
        spill_costs(func, analyses, costs);
        let g = &*graph;
        let precolored = func.arity as u32;
        let nregs = func.next_reg as usize;
        // Registers that actually occur.
        occurs.reset(nregs);
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Some(d) = instr.def() {
                    occurs.insert(d);
                }
                instr.visit_uses(|r| {
                    occurs.insert(r);
                });
            }
        }
        for p in 0..precolored {
            occurs.insert(Reg(p));
        }
        // Simplify.
        degree.clear();
        degree.extend((0..nregs as u32).map(|r| g.degree(r)));
        removed.clear();
        removed.resize(nregs, false);
        stack.clear();
        work.clear();
        work.extend(occurs.iter().map(|r| r.0).filter(|&r| r >= precolored));
        let mut remaining = work.len();
        while remaining > 0 {
            // Prefer a trivially colorable node.
            let pick = work
                .iter()
                .copied()
                .filter(|&r| !removed[r as usize])
                .find(|&r| degree[r as usize] < k)
                .or_else(|| {
                    // Potential spill: cheapest cost/degree among regs that
                    // are not themselves spill temporaries, pushed
                    // optimistically; fall back to any node if only temps
                    // remain.
                    let candidate = |rs: &mut dyn Iterator<Item = u32>| {
                        rs.min_by(|&a, &b| {
                            let ca = costs[a as usize] / (degree[a as usize].max(1) as f64);
                            let cb = costs[b as usize] / (degree[b as usize].max(1) as f64);
                            ca.partial_cmp(&cb).expect("costs are finite")
                        })
                    };
                    candidate(
                        &mut work
                            .iter()
                            .copied()
                            .filter(|&r| !removed[r as usize] && !no_spill.contains(&r)),
                    )
                    .or_else(|| {
                        candidate(&mut work.iter().copied().filter(|&r| !removed[r as usize]))
                    })
                });
            let r = pick.expect("remaining > 0 implies a node exists");
            removed[r as usize] = true;
            stack.push(r);
            remaining -= 1;
            for n in g.row_iter(r) {
                degree[n as usize] = degree[n as usize].saturating_sub(1);
            }
        }
        // Select.
        color.clear();
        color.resize(nregs, None);
        for p in 0..precolored {
            color[p as usize] = Some(p);
        }
        let mut spilled: BTreeSet<u32> = BTreeSet::new();
        while let Some(r) = stack.pop() {
            used_colors.clear();
            used_colors.resize(k, false);
            for n in g.row_iter(r) {
                if let Some(c) = color[n as usize] {
                    used_colors[c as usize] = true;
                }
            }
            match (0..k as u32).find(|&c| !used_colors[c as usize]) {
                Some(c) => color[r as usize] = Some(c),
                None => {
                    spilled.insert(r);
                }
            }
        }
        if std::env::var("REGALLOC_DEBUG").is_ok() {
            eprintln!("  spilled this round: {spilled:?}");
        }
        if spilled.is_empty() {
            // Rewrite to physical registers.
            for block in &mut func.blocks {
                for instr in &mut block.instrs {
                    if let Some(d) = instr.def_mut() {
                        *d = Reg(color[d.index()].expect("colored def"));
                    }
                    instr.visit_uses_mut(|r| {
                        *r = Reg(color[r.index()].expect("colored use"));
                    });
                }
                // Coloring can introduce identity copies; drop them.
                block
                    .instrs
                    .retain(|i| !matches!(i, Instr::Copy { dst, src } if dst == src));
            }
            func.next_reg = k as u32;
            // The physical-register rewrite is the last body change.
            analyses.note_body_changed();
            if let Some(before) = stats_before {
                let after = func.body_stats();
                let (i, l, s) = before.delta(&after);
                tr.delta("regalloc", i, l, s);
                tr.set_stats((after.instrs, after.loads, after.stores));
            }
            return report;
        }
        let mut spilled = spilled;
        let mut temps = BTreeSet::new();
        let mut dirty: BTreeSet<u32> = BTreeSet::new();
        report.rematerialized += try_rematerialize(func, &mut spilled, &mut temps, &mut dirty);
        let (rw, used_regs, remap_tmp) = (&mut *rw, &mut *used_regs, &mut *remap_tmp);
        report.spilled += spilled.len();
        if tr.enabled() {
            for &r in &spilled {
                tr.remark(
                    "regalloc",
                    trace::Remark::Spilled {
                        reg: r,
                        round: report.rounds,
                    },
                );
            }
        }
        let (l, s, spill_temps) = insert_spill_code(
            func, &spilled, spill_base, pending, &mut dirty, rw, used_regs, remap_tmp,
        );
        temps.extend(spill_temps);
        no_spill.extend(temps);
        report.spill_loads += l;
        report.spill_stores += s;
        analyses.note_body_changed_blocks(dirty.into_iter().map(BlockId));
    }
}

/// Interns the spill tags one function's allocation requested and rewrites
/// its provisional ids to the real ones. Call once per function, in
/// function-index order, so the resulting tag table matches a sequential
/// allocation exactly.
pub fn commit_spills(module: &mut Module, func_id: FuncId, pending: Vec<PendingSpill>) {
    if pending.is_empty() {
        return;
    }
    let mut remap: HashMap<u32, TagId> = HashMap::with_capacity(pending.len());
    for p in pending {
        let real = module
            .tags
            .intern(p.name, TagKind::Spill { owner: func_id.0 }, 1);
        remap.insert(p.provisional.0, real);
    }
    let func = module.func_mut(func_id);
    for block in &mut func.blocks {
        for instr in &mut block.instrs {
            match instr {
                Instr::SLoad { tag, .. } | Instr::SStore { tag, .. } => {
                    if let Some(real) = remap.get(&tag.0) {
                        *tag = *real;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Allocates one function onto `opts.num_regs` registers.
///
/// # Panics
///
/// Panics if the function's arity exceeds the register count or if
/// allocation fails to converge within `opts.max_rounds`.
pub fn allocate_function(module: &mut Module, func_id: FuncId, opts: &AllocOptions) -> AllocReport {
    let mut pending = Vec::new();
    let report = allocate_function_core(
        &module.tags,
        &mut module.funcs[func_id.index()],
        func_id,
        opts,
        &mut pending,
        &mut FunctionAnalyses::new(),
    );
    commit_spills(module, func_id, pending);
    report
}

/// Allocates every function in the module.
pub fn allocate(module: &mut Module, opts: &AllocOptions) -> AllocReport {
    let mut total = AllocReport::default();
    let mut scratch = AllocScratch::default();
    for fi in 0..module.funcs.len() {
        let mut pending = Vec::new();
        let r = allocate_function_core_traced(
            &module.tags,
            &mut module.funcs[fi],
            FuncId(fi as u32),
            opts,
            &mut pending,
            &mut FunctionAnalyses::new(),
            &mut scratch,
            &mut trace::FuncTrace::off(),
        );
        commit_spills(module, FuncId(fi as u32), pending);
        total.coalesced += r.coalesced;
        total.spilled += r.spilled;
        total.rematerialized += r.rematerialized;
        total.spill_loads += r.spill_loads;
        total.spill_stores += r.spill_stores;
        total.rounds += r.rounds;
    }
    debug_assert!(
        ir::validate(module).is_ok(),
        "allocation produced invalid IL"
    );
    total
}
