//! Graph-coloring register allocation for the register-promotion compiler.
//!
//! Implements the Chaitin–Briggs allocator the paper relies on: copy
//! coalescing (which removes the copies promotion introduces) and spilling
//! (which can undo a promotion when register pressure is too high — the
//! paper's `water` anomaly). Spill slots are ordinary [`ir::TagKind::Spill`]
//! tags, so spill traffic is measured by the VM like any other memory
//! traffic.
//!
//! ```
//! use regalloc::{allocate, AllocOptions};
//!
//! let mut module = minic::compile(r#"
//!     int main() {
//!         int a = 1; int b = 2; int c = 3;
//!         return a + b * c;
//!     }
//! "#)?;
//! let report = allocate(&mut module, &AllocOptions::default());
//! assert_eq!(report.spilled, 0);
//! // Every function now uses at most 32 registers.
//! assert!(module.funcs.iter().all(|f| f.next_reg <= 32));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod alloc;
mod matrix;

pub use alloc::{
    allocate, allocate_function, allocate_function_core, allocate_function_core_traced,
    commit_spills, interference_graph, interference_graph_in, AllocOptions, AllocReport,
    AllocScratch, PendingSpill, PROVISIONAL_SPILL_BASE,
};
pub use cfg::{for_each_instr_backwards, liveness, Cfg, Liveness, RegSet};
pub use matrix::BitMatrix;
