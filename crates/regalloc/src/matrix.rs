//! Dense symmetric bit-matrix adjacency for interference graphs.
//!
//! The allocator's interference graph used to be a `Vec<BTreeSet<u32>>` —
//! pointer-chasing and a node allocation per edge, in the hottest pass of
//! the whole pipeline (regalloc is ~50% of per-pass wall clock on every
//! benchmark program). [`BitMatrix`] replaces it with one flat `Vec<u64>`
//! of `n` rows (`n` = virtual-register count): membership is a bit test,
//! "union a live set into a row" is a word-wise OR (the same kernel style
//! as `ir::DenseTagSet`), and Briggs/George coalescing tests walk words
//! instead of tree nodes.
//!
//! Construction runs in two phases. While building, rows are filled with
//! *directed* bits via the raw word ops ([`or_row_words`], [`set_raw`],
//! [`clear_raw`]) with no degree upkeep; [`finalize_symmetric`] then
//! mirrors every bit and computes degrees in one sweep. After that, the
//! symmetric editing ops ([`insert_edge`], [`remove_edge`]) keep the
//! matrix and the degree vector consistent — that is what the coalescer's
//! evolving class-adjacency needs.
//!
//! [`or_row_words`]: BitMatrix::or_row_words
//! [`set_raw`]: BitMatrix::set_raw
//! [`clear_raw`]: BitMatrix::clear_raw
//! [`finalize_symmetric`]: BitMatrix::finalize_symmetric
//! [`insert_edge`]: BitMatrix::insert_edge
//! [`remove_edge`]: BitMatrix::remove_edge

/// A square bit matrix over `n` nodes with per-node degree counts.
#[derive(Debug, Clone)]
pub struct BitMatrix {
    n: usize,
    /// Words per row.
    stride: usize,
    /// Row-major bits: row `i` occupies `bits[i*stride .. (i+1)*stride]`.
    bits: Vec<u64>,
    /// Number of set bits per row; maintained by the symmetric editing
    /// ops, recomputed wholesale by [`BitMatrix::finalize_symmetric`].
    deg: Vec<u32>,
}

impl BitMatrix {
    /// An empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(64);
        BitMatrix {
            n,
            stride,
            bits: vec![0; n * stride],
            deg: vec![0; n],
        }
    }

    /// Re-targets the matrix at `n` nodes, zeroing every bit and degree
    /// while reusing the backing allocations whenever the new size fits.
    /// Equivalent to `*self = BitMatrix::new(n)` without the frees/allocs —
    /// the scratch-arena path for per-function interference rebuilds.
    pub fn reset(&mut self, n: usize) {
        let stride = n.div_ceil(64);
        self.n = n;
        self.stride = stride;
        self.bits.clear();
        self.bits.resize(n * stride, 0);
        self.deg.clear();
        self.deg.resize(n, 0);
    }

    /// Copies `other`'s full state into `self`, reusing `self`'s backing
    /// allocations when they are large enough (the scratch replacement for
    /// `graph.clone()` per coalescing round).
    pub fn copy_from(&mut self, other: &BitMatrix) {
        self.n = other.n;
        self.stride = other.stride;
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
        self.deg.clear();
        self.deg.extend_from_slice(&other.deg);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, a: u32, b: u32) -> (usize, u64) {
        (a as usize * self.stride + b as usize / 64, 1u64 << (b % 64))
    }

    /// Bit test: is `b` set in `a`'s row?
    #[inline]
    pub fn contains(&self, a: u32, b: u32) -> bool {
        let (w, m) = self.idx(a, b);
        self.bits[w] & m != 0
    }

    /// Set-bit count of `a`'s row (its degree, once symmetric).
    #[inline]
    pub fn degree(&self, a: u32) -> usize {
        self.deg[a as usize] as usize
    }

    /// Sets the directed bit `a -> b` with no degree upkeep
    /// (construction phase only).
    pub fn set_raw(&mut self, a: u32, b: u32) {
        let (w, m) = self.idx(a, b);
        self.bits[w] |= m;
    }

    /// Clears the directed bit `a -> b` with no degree upkeep
    /// (construction phase only).
    pub fn clear_raw(&mut self, a: u32, b: u32) {
        let (w, m) = self.idx(a, b);
        self.bits[w] &= !m;
    }

    /// ORs a dense word slice (e.g. a liveness set's backing words) into
    /// row `a`. Shorter slices OR into the row's prefix.
    pub fn or_row_words(&mut self, a: u32, words: &[u64]) {
        let start = a as usize * self.stride;
        let k = words.len().min(self.stride);
        let row = &mut self.bits[start..start + k];
        for (dst, src) in row.iter_mut().zip(words) {
            *dst |= *src;
        }
    }

    /// Mirrors every directed bit (making the matrix symmetric) and
    /// recomputes all degrees. Call once at the end of construction.
    pub fn finalize_symmetric(&mut self) {
        for a in 0..self.n as u32 {
            let start = a as usize * self.stride;
            for wi in 0..self.stride {
                let mut w = self.bits[start + wi];
                while w != 0 {
                    let b = (wi * 64 + w.trailing_zeros() as usize) as u32;
                    w &= w - 1;
                    let (mw, mm) = self.idx(b, a);
                    self.bits[mw] |= mm;
                }
            }
        }
        for a in 0..self.n {
            let start = a * self.stride;
            self.deg[a] = self.bits[start..start + self.stride]
                .iter()
                .map(|w| w.count_ones())
                .sum();
        }
    }

    /// Inserts the undirected edge `{a, b}`, keeping degrees consistent.
    /// Self-edges are ignored. Returns true if the edge was new.
    pub fn insert_edge(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let (w, m) = self.idx(a, b);
        if self.bits[w] & m != 0 {
            return false;
        }
        self.bits[w] |= m;
        self.deg[a as usize] += 1;
        let (w, m) = self.idx(b, a);
        self.bits[w] |= m;
        self.deg[b as usize] += 1;
        true
    }

    /// Removes the undirected edge `{a, b}`, keeping degrees consistent.
    /// Returns true if the edge existed.
    pub fn remove_edge(&mut self, a: u32, b: u32) -> bool {
        let (w, m) = self.idx(a, b);
        if self.bits[w] & m == 0 {
            return false;
        }
        self.bits[w] &= !m;
        self.deg[a as usize] -= 1;
        let (w, m) = self.idx(b, a);
        self.bits[w] &= !m;
        self.deg[b as usize] -= 1;
        true
    }

    /// Iterates the set bits of `a`'s row in ascending order.
    pub fn row_iter(&self, a: u32) -> RowIter<'_> {
        let start = a as usize * self.stride;
        RowIter {
            words: &self.bits[start..start + self.stride],
            wi: 0,
            current: if self.stride == 0 {
                0
            } else {
                self.bits[start]
            },
        }
    }

    /// The Briggs conservative-coalescing test: true if the union of
    /// `a`'s and `b`'s rows contains fewer than `k` nodes of degree ≥ `k`
    /// (counting degrees in this matrix). Word-wise union, early exit.
    pub fn briggs_union_ok(&self, a: u32, b: u32, k: usize) -> bool {
        let sa = a as usize * self.stride;
        let sb = b as usize * self.stride;
        let mut significant = 0usize;
        for wi in 0..self.stride {
            let mut w = self.bits[sa + wi] | self.bits[sb + wi];
            while w != 0 {
                let t = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if self.deg[t] as usize >= k {
                    significant += 1;
                    if significant >= k {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Ascending iterator over one row's set bits.
pub struct RowIter<'a> {
    words: &'a [u64],
    wi: usize,
    current: u64,
}

impl Iterator for RowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.wi * 64 + bit) as u32);
            }
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.current = self.words[self.wi];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        let m = BitMatrix::new(5);
        assert_eq!(m.len(), 5);
        assert!(!m.contains(0, 1));
        assert_eq!(m.degree(3), 0);
    }

    #[test]
    fn symmetric_editing_keeps_degrees() {
        let mut m = BitMatrix::new(130);
        assert!(m.insert_edge(0, 129));
        assert!(!m.insert_edge(129, 0), "already present (mirrored)");
        assert!(m.contains(0, 129) && m.contains(129, 0));
        assert_eq!(m.degree(0), 1);
        assert_eq!(m.degree(129), 1);
        assert!(!m.insert_edge(7, 7), "self edges ignored");
        assert!(m.remove_edge(129, 0));
        assert!(!m.remove_edge(129, 0));
        assert_eq!(m.degree(0), 0);
        assert_eq!(m.degree(129), 0);
    }

    #[test]
    fn finalize_mirrors_directed_bits() {
        let mut m = BitMatrix::new(70);
        m.set_raw(3, 68);
        m.or_row_words(5, &[0b1001]); // bits 0 and 3 into row 5
        m.clear_raw(5, 5);
        m.finalize_symmetric();
        assert!(m.contains(68, 3));
        assert!(m.contains(0, 5) && m.contains(3, 5));
        assert_eq!(m.degree(5), 2);
        assert_eq!(m.degree(3), 2, "edges {{3,68}} and {{3,5}}");
        assert_eq!(
            m.row_iter(5).collect::<Vec<_>>(),
            vec![0, 3],
            "row iteration is ascending"
        );
    }

    #[test]
    fn briggs_counts_significant_union_neighbors() {
        // Star around node 0: neighbors 1..=4, so deg(0)=4, deg(i)=1.
        let mut m = BitMatrix::new(6);
        for i in 1..=4 {
            m.insert_edge(0, i);
        }
        // Union of rows 1 and 2 = {0}; node 0 has degree 4 >= 2 -> one
        // significant neighbor, which is < k only for k > 1.
        assert!(m.briggs_union_ok(1, 2, 2), "1 significant < k=2");
        assert!(!m.briggs_union_ok(1, 2, 1), "1 significant >= k=1");
    }
}
