//! Canonical, arena-address-independent hashing of IL.
//!
//! The incremental-recompilation layer keys its per-function cache on
//! *content*, so two structurally identical functions must hash equal no
//! matter which module they live in, which index the module assigned
//! them, or what order the front end's interner saw their names in. The
//! two hashes here achieve that by resolving every cross-function
//! reference to its *name* during the walk:
//!
//! * [`body_hash`] covers the structural body — opcodes, registers,
//!   block edges, constants, and the tags named *directly* by scalar
//!   operations (`cload`/`sload`/`sstore`/`lea`/`alloc`) — but skips the
//!   analysis-written fields (`load`/`store` tag sets, call MOD/REF
//!   sets). It answers "did the function itself change?".
//! * [`facts_hash`] covers exactly those skipped fields plus the
//!   [`crate::TagInfo`] of every tag the function references (kind, owner,
//!   size, address-taken flag). It answers "did the interprocedural
//!   facts feeding this function change?".
//!
//! A function's cache fingerprint mixes both (plus the configuration and
//! callee-summary hashes); keeping them separate lets the driver report
//! *why* a cache miss happened — edited body versus invalidated summary.
//!
//! Tag and function ids are resolved through the owning [`Module`], and
//! ids outside the module's tables (the allocator's provisional spill
//! ids never appear in pre-allocation bodies, but defensiveness is
//! cheap) hash as their raw value.

use crate::function::{Function, Module};
use crate::instr::{Callee, FuncId, Instr};
use crate::tag::{TagId, TagKind, TagSet};
use std::hash::Hasher;

/// The multiplier from the Fx (Firefox) hash: a cheap, deterministic,
/// non-cryptographic mix that the rustc ecosystem uses for exactly this
/// kind of content addressing.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `std`-only implementation of the FxHash word mixer. Deterministic
/// across processes and platforms (unlike [`std::hash::RandomState`]),
/// which is what lets fingerprints persist across compiles in one
/// session and stay comparable between sessions.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A fresh hasher with the zero state.
    pub fn new() -> FxHasher {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Hashes a byte string with the deterministic Fx mixer.
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::new();
    h.write(bytes);
    h.finish()
}

/// Combines two hashes order-dependently.
pub fn fx_mix(a: u64, b: u64) -> u64 {
    let mut h = FxHasher::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

/// Hashes a tag by name (canonical) or by raw id if it is not in the
/// module's table (provisional spill ids).
fn hash_tag(h: &mut FxHasher, module: &Module, tag: TagId) {
    if (tag.index()) < module.tags.len() {
        h.write(module.tags.info(tag).name.as_bytes());
    } else {
        h.write_u8(0xFF);
        h.write_u32(tag.0);
    }
}

/// Hashes a function reference by name (canonical) or raw id when out of
/// range.
fn hash_func_ref(h: &mut FxHasher, module: &Module, fid: FuncId) {
    match module.funcs.get(fid.index()) {
        Some(f) => h.write(f.name.as_bytes()),
        None => {
            h.write_u8(0xFE);
            h.write_u32(fid.0);
        }
    }
}

/// Hashes a [`TagSet`] canonically: the `All` marker, or the member tags
/// by name in ascending-id order (id order is deterministic per module,
/// and the names themselves make the digest module-independent).
fn hash_tag_set(h: &mut FxHasher, module: &Module, set: &TagSet) {
    match set {
        TagSet::All => h.write_u8(1),
        TagSet::Set(s) => {
            h.write_u8(2);
            h.write_usize(s.len());
            for t in s.iter() {
                hash_tag(h, module, t);
            }
        }
    }
}

/// Opcode discriminants for the canonical walk. Kept explicit (rather
/// than `mem::discriminant`) so the digest is stable across compiler
/// versions and enum reorderings.
fn opcode(instr: &Instr) -> u8 {
    match instr {
        Instr::IConst { .. } => 1,
        Instr::FConst { .. } => 2,
        Instr::FuncAddr { .. } => 3,
        Instr::Copy { .. } => 4,
        Instr::Unary { .. } => 5,
        Instr::Binary { .. } => 6,
        Instr::Cmp { .. } => 7,
        Instr::CLoad { .. } => 8,
        Instr::SLoad { .. } => 9,
        Instr::SStore { .. } => 10,
        Instr::Load { .. } => 11,
        Instr::Store { .. } => 12,
        Instr::Lea { .. } => 13,
        Instr::PtrAdd { .. } => 14,
        Instr::Alloc { .. } => 15,
        Instr::Call { .. } => 16,
        Instr::Phi { .. } => 17,
        Instr::Jump { .. } => 18,
        Instr::Branch { .. } => 19,
        Instr::Ret { .. } => 20,
        Instr::Nop => 21,
    }
}

/// Hashes one instruction's structural content — everything except the
/// analysis-written tag sets (`Load`/`Store` `tags`, `Call` `mods` and
/// `refs`). `with_facts` selects the complementary projection: *only*
/// those fields (the body walk calls it with `false`, the facts walk
/// with `true`).
fn hash_instr(h: &mut FxHasher, module: &Module, instr: &Instr, with_facts: bool) {
    if with_facts {
        match instr {
            Instr::Load { tags, .. } | Instr::Store { tags, .. } => {
                h.write_u8(opcode(instr));
                hash_tag_set(h, module, tags);
            }
            Instr::Call { mods, refs, .. } => {
                h.write_u8(opcode(instr));
                hash_tag_set(h, module, mods);
                hash_tag_set(h, module, refs);
            }
            _ => {}
        }
        return;
    }
    h.write_u8(opcode(instr));
    match instr {
        Instr::IConst { dst, value } => {
            h.write_u32(dst.0);
            h.write_u64(*value as u64);
        }
        Instr::FConst { dst, value } => {
            h.write_u32(dst.0);
            h.write_u64(value.to_bits());
        }
        Instr::FuncAddr { dst, func } => {
            h.write_u32(dst.0);
            hash_func_ref(h, module, *func);
        }
        Instr::Copy { dst, src } => {
            h.write_u32(dst.0);
            h.write_u32(src.0);
        }
        Instr::Unary { op, dst, src } => {
            h.write_u8(*op as u8);
            h.write_u32(dst.0);
            h.write_u32(src.0);
        }
        Instr::Binary { op, dst, lhs, rhs } => {
            h.write_u8(*op as u8);
            h.write_u32(dst.0);
            h.write_u32(lhs.0);
            h.write_u32(rhs.0);
        }
        Instr::Cmp { op, dst, lhs, rhs } => {
            h.write_u8(*op as u8);
            h.write_u32(dst.0);
            h.write_u32(lhs.0);
            h.write_u32(rhs.0);
        }
        Instr::CLoad { dst, tag } | Instr::SLoad { dst, tag } | Instr::Lea { dst, tag } => {
            h.write_u32(dst.0);
            hash_tag(h, module, *tag);
        }
        Instr::SStore { src, tag } => {
            h.write_u32(src.0);
            hash_tag(h, module, *tag);
        }
        Instr::Load { dst, addr, .. } => {
            h.write_u32(dst.0);
            h.write_u32(addr.0);
        }
        Instr::Store { src, addr, .. } => {
            h.write_u32(src.0);
            h.write_u32(addr.0);
        }
        Instr::PtrAdd { dst, base, offset } => {
            h.write_u32(dst.0);
            h.write_u32(base.0);
            h.write_u32(offset.0);
        }
        Instr::Alloc { dst, size, site } => {
            h.write_u32(dst.0);
            h.write_u32(size.0);
            hash_tag(h, module, *site);
        }
        Instr::Call {
            dst, callee, args, ..
        } => {
            match dst {
                Some(d) => {
                    h.write_u8(1);
                    h.write_u32(d.0);
                }
                None => h.write_u8(0),
            }
            match callee {
                Callee::Direct(f) => {
                    h.write_u8(1);
                    hash_func_ref(h, module, *f);
                }
                Callee::Indirect(r) => {
                    h.write_u8(2);
                    h.write_u32(r.0);
                }
                Callee::Intrinsic(i) => {
                    h.write_u8(3);
                    h.write(i.name().as_bytes());
                }
            }
            h.write_usize(args.len());
            for a in args {
                h.write_u32(a.0);
            }
        }
        Instr::Phi { dst, args } => {
            h.write_u32(dst.0);
            h.write_usize(args.len());
            for (b, r) in args {
                h.write_u32(b.0);
                h.write_u32(r.0);
            }
        }
        Instr::Jump { target } => h.write_u32(target.0),
        Instr::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            h.write_u32(cond.0);
            h.write_u32(then_bb.0);
            h.write_u32(else_bb.0);
        }
        Instr::Ret { value } => match value {
            Some(v) => {
                h.write_u8(1);
                h.write_u32(v.0);
            }
            None => h.write_u8(0),
        },
        Instr::Nop => {}
    }
}

/// Canonical hash of a function's structural body: signature, block
/// structure, and every instruction *except* the analysis-written tag
/// sets, with tag and function references resolved to names. Equal for
/// structurally identical functions regardless of module, function
/// index, tag-id assignment, or interner state.
pub fn body_hash(module: &Module, func: &Function) -> u64 {
    let mut h = FxHasher::new();
    h.write(func.name.as_bytes());
    h.write_usize(func.arity);
    h.write_u8(func.has_result as u8);
    h.write_u32(func.entry.0);
    h.write_u32(func.next_reg);
    h.write_usize(func.blocks.len());
    for block in &func.blocks {
        h.write_usize(block.instrs.len());
        for instr in &block.instrs {
            hash_instr(&mut h, module, instr, false);
        }
    }
    h.finish()
}

/// Canonical hash of the analysis-written facts a function's fused-chain
/// trip consumes: the `load`/`store` tag sets and call MOD/REF sets in
/// body order, plus the [`crate::TagInfo`] (kind, owner function by
/// *name*, size, address-taken flag) of every tag the function
/// references, in name order. A change here with an unchanged
/// [`body_hash`] is exactly a "summary invalidation".
pub fn facts_hash(module: &Module, func: &Function) -> u64 {
    let mut h = FxHasher::new();
    let mut referenced: Vec<TagId> = Vec::new();
    let mut note = |t: TagId| {
        if t.index() < module.tags.len() {
            referenced.push(t);
        }
    };
    for block in &func.blocks {
        for instr in &block.instrs {
            hash_instr(&mut h, module, instr, true);
            match instr {
                Instr::CLoad { tag, .. }
                | Instr::SLoad { tag, .. }
                | Instr::SStore { tag, .. }
                | Instr::Lea { tag, .. } => note(*tag),
                Instr::Alloc { site, .. } => note(*site),
                Instr::Load { tags, .. } | Instr::Store { tags, .. } => {
                    if let TagSet::Set(s) = tags {
                        s.iter().for_each(&mut note);
                    }
                }
                Instr::Call { mods, refs, .. } => {
                    for set in [mods, refs] {
                        if let TagSet::Set(s) = set {
                            s.iter().for_each(&mut note);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    referenced.sort_unstable_by(|a, b| {
        module
            .tags
            .info(*a)
            .name
            .cmp(&module.tags.info(*b).name)
            .then(a.0.cmp(&b.0))
    });
    referenced.dedup();
    h.write_usize(referenced.len());
    for t in referenced {
        let info = module.tags.info(t);
        h.write(info.name.as_bytes());
        match info.kind {
            TagKind::Global => h.write_u8(1),
            TagKind::Local { owner } => {
                h.write_u8(2);
                hash_func_ref(&mut h, module, FuncId(owner));
            }
            TagKind::Param { owner } => {
                h.write_u8(3);
                hash_func_ref(&mut h, module, FuncId(owner));
            }
            TagKind::Heap { site } => {
                h.write_u8(4);
                h.write_u32(site);
            }
            TagKind::Spill { owner } => {
                h.write_u8(5);
                hash_func_ref(&mut h, module, FuncId(owner));
            }
        }
        h.write_usize(info.size);
        h.write_u8(info.address_taken as u8);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    const A: &str = "\
tag \"g\" global size=1
global \"g\" zero
func @main(0) {
B0:
  r0 = cload \"g\"
  r1 = iconst 1
  r2 = add r0, r1
  ret
}
";

    // Same function, but the module carries an extra tag and an extra
    // function *before* it, shifting its index and its tags' ids.
    const B: &str = "\
tag \"pad.x\" local owner=0 size=1
tag \"g\" global size=1
global \"g\" zero
func @pad(0) {
B0:
  r0 = iconst 0
  sstore r0, \"pad.x\"
  ret
}
func @main(0) {
B0:
  r0 = cload \"g\"
  r1 = iconst 1
  r2 = add r0, r1
  ret
}
";

    fn find<'m>(m: &'m Module, name: &str) -> &'m Function {
        m.funcs.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn body_hash_independent_of_function_index_and_tag_ids() {
        let a = parse_module(A).unwrap();
        let b = parse_module(B).unwrap();
        assert_eq!(
            body_hash(&a, find(&a, "main")),
            body_hash(&b, find(&b, "main"))
        );
        assert_eq!(
            facts_hash(&a, find(&a, "main")),
            facts_hash(&b, find(&b, "main"))
        );
        assert_ne!(
            body_hash(&b, find(&b, "pad")),
            body_hash(&b, find(&b, "main"))
        );
    }

    #[test]
    fn body_hash_sees_structural_edits() {
        let a = parse_module(A).unwrap();
        let edited = parse_module(&A.replace("iconst 1", "iconst 2")).unwrap();
        assert_ne!(
            body_hash(&a, find(&a, "main")),
            body_hash(&edited, find(&edited, "main"))
        );
    }

    #[test]
    fn facts_hash_sees_address_taken_flips_body_hash_does_not() {
        let a = parse_module(A).unwrap();
        let mut b = parse_module(A).unwrap();
        let g = b.tags.lookup("g").unwrap();
        b.tags.mark_address_taken(g);
        assert_eq!(body_hash(&a, find(&a, "main")), {
            let f = find(&b, "main");
            body_hash(&b, f)
        });
        assert_ne!(facts_hash(&a, find(&a, "main")), {
            let f = find(&b, "main");
            facts_hash(&b, f)
        });
    }

    #[test]
    fn fx_hash_is_deterministic_and_length_aware() {
        assert_eq!(fx_hash_bytes(b"main"), fx_hash_bytes(b"main"));
        assert_ne!(fx_hash_bytes(b"ab"), fx_hash_bytes(b"ab\0"));
        assert_ne!(fx_mix(1, 2), fx_mix(2, 1));
    }
}
