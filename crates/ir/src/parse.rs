//! Parser for the textual IL emitted by [`crate::print`].
//!
//! The grammar is line-oriented; `;` starts a comment that runs to end of
//! line. See the crate-level documentation for a full example.

use crate::function::{Function, Global, GlobalInit, Module};
use crate::instr::{BinOp, BlockId, Callee, CmpOp, FuncId, Instr, Intrinsic, Reg, UnaryOp};
use crate::tag::{TagId, TagKind, TagSet};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An IL parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseIlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IL parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseIlError {}

type Result<T> = std::result::Result<T, ParseIlError>;

struct Parser<'a> {
    module: Module,
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    /// Function names referenced before definition -> placeholder ids.
    func_ids: HashMap<String, FuncId>,
    /// Calls needing patch-up: (func index, block, instr index, name).
    pending_funcs: Vec<(usize, usize, usize, String)>,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(ParseIlError {
        line,
        message: message.into(),
    })
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find(';') {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            module: Module::new(),
            lines,
            pos: 0,
            func_ids: HashMap::new(),
            pending_funcs: Vec::new(),
        }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse(mut self) -> Result<Module> {
        while let Some((lineno, line)) = self.peek() {
            if line.starts_with("tag ") {
                self.next();
                self.parse_tag(lineno, line)?;
            } else if line.starts_with("global ") {
                self.next();
                self.parse_global(lineno, line)?;
            } else if line.starts_with("func ") {
                self.parse_func()?;
            } else {
                return err(lineno, format!("expected tag/global/func, found: {line}"));
            }
        }
        // Patch forward-referenced direct calls.
        for (fi, bi, ii, name) in std::mem::take(&mut self.pending_funcs) {
            let id = match self.module.lookup_func(&name) {
                Some(id) => id,
                None => return err(0, format!("call to undefined function @{name}")),
            };
            if let Instr::Call { callee, .. } = &mut self.module.funcs[fi].blocks[bi].instrs[ii] {
                *callee = Callee::Direct(id);
            }
        }
        Ok(self.module)
    }

    fn parse_tag(&mut self, lineno: usize, line: &str) -> Result<()> {
        // tag "name" <kind> size=N [addressed]
        let rest = &line[4..];
        let (name, rest) = parse_quoted(rest).ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected quoted tag name".into(),
        })?;
        let mut toks = rest.split_whitespace().peekable();
        let kind_word = toks.next().ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected tag kind".into(),
        })?;
        let kind = match kind_word {
            "global" => TagKind::Global,
            "local" | "param" | "heap" | "spill" => {
                let attr = toks.next().ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: format!("{kind_word} tag needs owner=/site="),
                })?;
                let value: u32 = attr
                    .split('=')
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: format!("bad attribute {attr}"),
                    })?;
                match kind_word {
                    "local" => TagKind::Local { owner: value },
                    "param" => TagKind::Param { owner: value },
                    "heap" => TagKind::Heap { site: value },
                    _ => TagKind::Spill { owner: value },
                }
            }
            other => return err(lineno, format!("unknown tag kind {other}")),
        };
        let mut size = 1usize;
        let mut addressed = false;
        for t in toks {
            if let Some(s) = t.strip_prefix("size=") {
                size = s.parse().map_err(|_| ParseIlError {
                    line: lineno,
                    message: format!("bad size {s}"),
                })?;
            } else if t == "addressed" {
                addressed = true;
            } else {
                return err(lineno, format!("unknown tag attribute {t}"));
            }
        }
        if self.module.tags.lookup(&name).is_some() {
            return err(lineno, format!("duplicate tag \"{name}\""));
        }
        let id = self.module.tags.intern(name, kind, size);
        if addressed {
            self.module.tags.mark_address_taken(id);
        }
        Ok(())
    }

    fn parse_global(&mut self, lineno: usize, line: &str) -> Result<()> {
        // global "name" zero | ints v... | floats v...
        let rest = &line[7..];
        let (name, rest) = parse_quoted(rest).ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected quoted tag name".into(),
        })?;
        let tag = self.module.tags.lookup(&name).ok_or_else(|| ParseIlError {
            line: lineno,
            message: format!("unknown tag \"{name}\""),
        })?;
        let mut toks = rest.split_whitespace();
        let init = match toks.next() {
            Some("zero") => GlobalInit::Zero,
            Some("ints") => {
                let vs: std::result::Result<Vec<i64>, _> = toks.map(|t| t.parse()).collect();
                GlobalInit::Ints(vs.map_err(|_| ParseIlError {
                    line: lineno,
                    message: "bad integer initializer".into(),
                })?)
            }
            Some("floats") => {
                let vs: std::result::Result<Vec<f64>, _> = toks.map(|t| t.parse()).collect();
                GlobalInit::Floats(vs.map_err(|_| ParseIlError {
                    line: lineno,
                    message: "bad float initializer".into(),
                })?)
            }
            _ => return err(lineno, "expected zero/ints/floats"),
        };
        self.module.globals.push(Global { tag, init });
        Ok(())
    }

    fn parse_func(&mut self) -> Result<()> {
        let (lineno, header) = self.next().expect("caller checked");
        // func @name(arity) [result] {
        let rest = header.strip_prefix("func @").ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected func @name".into(),
        })?;
        let open = rest.find('(').ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected (arity)".into(),
        })?;
        let name = rest[..open].to_string();
        let close = rest.find(')').ok_or_else(|| ParseIlError {
            line: lineno,
            message: "expected )".into(),
        })?;
        let arity: usize = rest[open + 1..close].parse().map_err(|_| ParseIlError {
            line: lineno,
            message: "bad arity".into(),
        })?;
        let tail = rest[close + 1..].trim();
        let has_result = match tail {
            "{" => false,
            "result {" => true,
            other => return err(lineno, format!("unexpected func header tail: {other}")),
        };
        let mut func = Function::new(name.clone(), arity);
        func.has_result = has_result;
        func.blocks.clear();
        let this_func = self.module.funcs.len();

        let mut current: Option<usize> = None;
        let mut max_reg: u32 = arity as u32;
        loop {
            let (lineno, line) = match self.next() {
                Some(l) => l,
                None => return err(lineno, "unterminated function body"),
            };
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                let id = parse_block_label(label).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: format!("bad label {label}"),
                })?;
                while func.blocks.len() <= id.index() {
                    func.blocks.push(crate::function::Block::new());
                }
                current = Some(id.index());
                continue;
            }
            let cur = current.ok_or_else(|| ParseIlError {
                line: lineno,
                message: "instruction before any label".into(),
            })?;
            let instr =
                self.parse_instr(lineno, line, this_func, cur, func.blocks[cur].instrs.len())?;
            if let Some(d) = instr.def() {
                max_reg = max_reg.max(d.0 + 1);
            }
            instr.visit_uses(|r| max_reg = max_reg.max(r.0 + 1));
            func.blocks[cur].instrs.push(instr);
        }
        if func.blocks.is_empty() {
            func.blocks.push(crate::function::Block::new());
        }
        func.next_reg = max_reg;
        if self.module.lookup_func(&func.name).is_some() {
            return err(lineno, format!("duplicate function @{}", func.name));
        }
        let id = self.module.add_func(func);
        self.func_ids.insert(name, id);
        Ok(())
    }

    fn lookup_tag(&self, lineno: usize, name: &str) -> Result<TagId> {
        self.module.tags.lookup(name).ok_or_else(|| ParseIlError {
            line: lineno,
            message: format!("unknown tag \"{name}\""),
        })
    }

    fn parse_tagset(&self, lineno: usize, text: &str) -> Result<TagSet> {
        let inner = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("expected tag set, got {text}"),
            })?;
        let inner = inner.trim();
        if inner == "*" {
            return Ok(TagSet::All);
        }
        let mut set = TagSet::empty();
        let mut rest = inner;
        while !rest.is_empty() {
            let (name, r) = parse_quoted(rest).ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("bad tag set {text}"),
            })?;
            set.insert(self.lookup_tag(lineno, &name)?);
            rest = r.trim_start().trim_start_matches(',').trim_start();
        }
        Ok(set)
    }

    fn parse_instr(
        &mut self,
        lineno: usize,
        line: &str,
        this_func: usize,
        block: usize,
        instr_idx: usize,
    ) -> Result<Instr> {
        // Split an optional "rN = " prefix.
        let (dst, body) = match line.split_once('=') {
            Some((lhs, rhs)) if lhs.trim().starts_with('r') && !lhs.trim().contains(' ') => {
                let d = parse_reg(lhs.trim()).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: format!("bad register {lhs}"),
                })?;
                (Some(d), rhs.trim())
            }
            _ => (None, line),
        };
        let (op, rest) = match body.split_once(' ') {
            Some((o, r)) => (o, r.trim()),
            None => (body, ""),
        };
        let need_dst = || -> Result<Reg> {
            dst.ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("{op} needs a destination"),
            })
        };
        let reg = |t: &str| -> Result<Reg> {
            parse_reg(t.trim()).ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("bad register {t}"),
            })
        };
        let two_regs = |rest: &str| -> Result<(Reg, Reg)> {
            let (a, b) = rest.split_once(',').ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("{op} needs two operands"),
            })?;
            Ok((reg(a)?, reg(b)?))
        };

        if let Some(bin) = parse_binop(op) {
            let (lhs, rhs) = two_regs(rest)?;
            return Ok(Instr::Binary {
                op: bin,
                dst: need_dst()?,
                lhs,
                rhs,
            });
        }
        if let Some(cmp) = parse_cmpop(op) {
            let (lhs, rhs) = two_regs(rest)?;
            return Ok(Instr::Cmp {
                op: cmp,
                dst: need_dst()?,
                lhs,
                rhs,
            });
        }
        if let Some(un) = parse_unop(op) {
            return Ok(Instr::Unary {
                op: un,
                dst: need_dst()?,
                src: reg(rest)?,
            });
        }

        match op {
            "iconst" => Ok(Instr::IConst {
                dst: need_dst()?,
                value: rest.parse().map_err(|_| ParseIlError {
                    line: lineno,
                    message: format!("bad integer {rest}"),
                })?,
            }),
            "fconst" => Ok(Instr::FConst {
                dst: need_dst()?,
                value: rest.parse().map_err(|_| ParseIlError {
                    line: lineno,
                    message: format!("bad float {rest}"),
                })?,
            }),
            "funcaddr" => {
                let name = rest.strip_prefix('@').ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "funcaddr needs @name".into(),
                })?;
                // Use a placeholder id; patched after all functions parse.
                let d = need_dst()?;
                if let Some(&id) = self.func_ids.get(name) {
                    Ok(Instr::FuncAddr { dst: d, func: id })
                } else {
                    // Temporary: FuncId(u32::MAX) patched in pass 2 is complex
                    // for funcaddr; require definition-before-use instead.
                    err(
                        lineno,
                        format!("funcaddr to not-yet-defined function @{name} (define it earlier)"),
                    )
                }
            }
            "copy" => Ok(Instr::Copy {
                dst: need_dst()?,
                src: reg(rest)?,
            }),
            "cload" | "sload" => {
                let (name, _) = parse_quoted(rest).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "expected tag".into(),
                })?;
                let tag = self.lookup_tag(lineno, &name)?;
                let d = need_dst()?;
                Ok(if op == "cload" {
                    Instr::CLoad { dst: d, tag }
                } else {
                    Instr::SLoad { dst: d, tag }
                })
            }
            "sstore" => {
                let (r, restq) = rest.split_once(',').ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "sstore needs reg, tag".into(),
                })?;
                let (name, _) = parse_quoted(restq.trim()).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "expected tag".into(),
                })?;
                Ok(Instr::SStore {
                    src: reg(r)?,
                    tag: self.lookup_tag(lineno, &name)?,
                })
            }
            "load" => {
                // load [rA] {...}
                let (addr, ts) = parse_bracketed(rest).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "load needs [addr] {tags}".into(),
                })?;
                Ok(Instr::Load {
                    dst: need_dst()?,
                    addr: reg(addr)?,
                    tags: self.parse_tagset(lineno, ts.trim())?,
                })
            }
            "store" => {
                // store rS, [rA] {...}
                let (src, rest2) = rest.split_once(',').ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "store needs src, [addr] {tags}".into(),
                })?;
                let (addr, ts) = parse_bracketed(rest2.trim()).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "store needs [addr] {tags}".into(),
                })?;
                Ok(Instr::Store {
                    src: reg(src)?,
                    addr: reg(addr)?,
                    tags: self.parse_tagset(lineno, ts.trim())?,
                })
            }
            "lea" => {
                let (name, _) = parse_quoted(rest).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "expected tag".into(),
                })?;
                Ok(Instr::Lea {
                    dst: need_dst()?,
                    tag: self.lookup_tag(lineno, &name)?,
                })
            }
            "ptradd" => {
                let (base, off) = two_regs(rest)?;
                Ok(Instr::PtrAdd {
                    dst: need_dst()?,
                    base,
                    offset: off,
                })
            }
            "alloc" => {
                let (size, restq) = rest.split_once(',').ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "alloc needs size, site".into(),
                })?;
                let (name, _) = parse_quoted(restq.trim()).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: "expected site tag".into(),
                })?;
                Ok(Instr::Alloc {
                    dst: need_dst()?,
                    size: reg(size)?,
                    site: self.lookup_tag(lineno, &name)?,
                })
            }
            "call" => self.parse_call(lineno, rest, dst, this_func, block, instr_idx),
            "phi" => {
                let inner = rest
                    .strip_prefix('[')
                    .and_then(|t| t.strip_suffix(']'))
                    .ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: "phi needs [B: r, ...]".into(),
                    })?;
                let mut args = Vec::new();
                for part in inner.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let (b, r) = part.split_once(':').ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: format!("bad phi arg {part}"),
                    })?;
                    let bid = parse_block_label(b.trim()).ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: format!("bad block {b}"),
                    })?;
                    args.push((bid, reg(r)?));
                }
                Ok(Instr::Phi {
                    dst: need_dst()?,
                    args,
                })
            }
            "jump" => {
                let t = parse_block_label(rest).ok_or_else(|| ParseIlError {
                    line: lineno,
                    message: format!("bad block {rest}"),
                })?;
                Ok(Instr::Jump { target: t })
            }
            "branch" => {
                let mut parts = rest.split(',').map(str::trim);
                let cond = reg(parts.next().unwrap_or(""))?;
                let t = parts
                    .next()
                    .and_then(parse_block_label)
                    .ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: "bad then block".into(),
                    })?;
                let e = parts
                    .next()
                    .and_then(parse_block_label)
                    .ok_or_else(|| ParseIlError {
                        line: lineno,
                        message: "bad else block".into(),
                    })?;
                Ok(Instr::Branch {
                    cond,
                    then_bb: t,
                    else_bb: e,
                })
            }
            "ret" => {
                if rest.is_empty() {
                    Ok(Instr::Ret { value: None })
                } else {
                    Ok(Instr::Ret {
                        value: Some(reg(rest)?),
                    })
                }
            }
            "nop" => Ok(Instr::Nop),
            other => err(lineno, format!("unknown opcode {other}")),
        }
    }

    fn parse_call(
        &mut self,
        lineno: usize,
        rest: &str,
        dst: Option<Reg>,
        this_func: usize,
        block: usize,
        instr_idx: usize,
    ) -> Result<Instr> {
        // callee(args) mods{...} refs{...}
        let open = rest.find('(').ok_or_else(|| ParseIlError {
            line: lineno,
            message: "call needs (args)".into(),
        })?;
        let callee_text = rest[..open].trim();
        let close = rest.find(')').ok_or_else(|| ParseIlError {
            line: lineno,
            message: "call needs )".into(),
        })?;
        let args_text = &rest[open + 1..close];
        let mut args = Vec::new();
        for a in args_text.split(',') {
            let a = a.trim();
            if a.is_empty() {
                continue;
            }
            args.push(parse_reg(a).ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("bad argument {a}"),
            })?);
        }
        let tail = rest[close + 1..].trim();
        let (mods, refs) = if tail.is_empty() {
            (TagSet::All, TagSet::All)
        } else {
            let mods_text = tail.strip_prefix("mods").ok_or_else(|| ParseIlError {
                line: lineno,
                message: "expected mods{...}".into(),
            })?;
            let refs_at = mods_text.find("refs").ok_or_else(|| ParseIlError {
                line: lineno,
                message: "expected refs{...}".into(),
            })?;
            (
                self.parse_tagset(lineno, mods_text[..refs_at].trim())?,
                self.parse_tagset(lineno, mods_text[refs_at + 4..].trim())?,
            )
        };
        let callee = if let Some(name) = callee_text.strip_prefix('@') {
            if let Some(&id) = self.func_ids.get(name) {
                Callee::Direct(id)
            } else {
                // Forward reference: record for patching; use a placeholder.
                self.pending_funcs
                    .push((this_func, block, instr_idx, name.to_string()));
                Callee::Direct(FuncId(u32::MAX))
            }
        } else if let Some(name) = callee_text.strip_prefix('$') {
            Callee::Intrinsic(Intrinsic::from_name(name).ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("unknown intrinsic ${name}"),
            })?)
        } else if let Some(r) = callee_text.strip_prefix('*') {
            Callee::Indirect(parse_reg(r).ok_or_else(|| ParseIlError {
                line: lineno,
                message: format!("bad indirect target {r}"),
            })?)
        } else {
            return err(lineno, format!("bad callee {callee_text}"));
        };
        Ok(Instr::Call {
            dst,
            callee,
            args,
            mods,
            refs,
        })
    }
}

fn parse_quoted(text: &str) -> Option<(String, &str)> {
    let text = text.trim_start();
    let rest = text.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((rest[..end].to_string(), &rest[end + 1..]))
}

fn parse_bracketed(text: &str) -> Option<(&str, &str)> {
    let rest = text.trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    Some((&rest[..end], &rest[end + 1..]))
}

fn parse_reg(text: &str) -> Option<Reg> {
    text.strip_prefix('r')?.parse().ok().map(Reg)
}

fn parse_block_label(text: &str) -> Option<BlockId> {
    text.strip_prefix('B')?.parse().ok().map(BlockId)
}

fn parse_binop(op: &str) -> Option<BinOp> {
    Some(match op {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn parse_cmpop(op: &str) -> Option<CmpOp> {
    Some(match op {
        "cmpeq" => CmpOp::Eq,
        "cmpne" => CmpOp::Ne,
        "cmplt" => CmpOp::Lt,
        "cmple" => CmpOp::Le,
        "cmpgt" => CmpOp::Gt,
        "cmpge" => CmpOp::Ge,
        _ => return None,
    })
}

fn parse_unop(op: &str) -> Option<UnaryOp> {
    Some(match op {
        "neg" => UnaryOp::Neg,
        "not" => UnaryOp::Not,
        "i2f" => UnaryOp::IntToFloat,
        "f2i" => UnaryOp::FloatToInt,
        _ => return None,
    })
}

/// Parses a textual IL module.
///
/// # Errors
///
/// Returns [`ParseIlError`] with the offending line on any syntax or
/// reference error (unknown tag, undefined function, malformed operand).
pub fn parse_module(src: &str) -> Result<Module> {
    Parser::new(src).parse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::module_to_string;

    const EXAMPLE: &str = r#"
; a tiny module
tag "g:x" global size=1 addressed
tag "main.buf" local owner=0 size=8
tag "heap@0" heap site=0 size=1
global "g:x" ints 41
func @main(0) result {
B0:
  r0 = iconst 1
  r1 = sload "g:x"
  r2 = add r1, r0
  sstore r2, "g:x"
  r3 = lea "main.buf"
  r4 = load [r3] {"g:x", "main.buf"}
  store r4, [r3] {*}
  r5 = alloc r0, "heap@0"
  branch r2, B1, B2
B1:
  r6 = call @helper(r2) mods{} refs{"g:x"}
  jump B2
B2:
  r7 = phi [B0: r2, B1: r6]
  call $print_int(r7) mods{} refs{}
  ret r7
}
func @helper(1) result {
B0:
  ret r0
}
"#;

    #[test]
    fn parses_example() {
        let m = parse_module(EXAMPLE).expect("parse");
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.tags.len(), 3);
        assert_eq!(m.globals.len(), 1);
        let main = m.func(m.main().unwrap());
        assert_eq!(main.blocks.len(), 3);
        assert!(main.has_result);
        // Forward call reference was patched.
        let helper = m.lookup_func("helper").unwrap();
        let call = &main.block(BlockId(1)).instrs[0];
        assert_eq!(
            call,
            &Instr::Call {
                dst: Some(Reg(6)),
                callee: Callee::Direct(helper),
                args: vec![Reg(2)],
                mods: TagSet::empty(),
                refs: TagSet::single(TagId(0)),
            }
        );
    }

    #[test]
    fn roundtrips() {
        let m = parse_module(EXAMPLE).expect("parse");
        let text = module_to_string(&m);
        let m2 = parse_module(&text).expect("reparse");
        assert_eq!(m, m2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module("tag \"x\" bogus size=1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unknown tag kind"));
    }

    #[test]
    fn rejects_unknown_tag_reference() {
        let src = "func @main(0) {\nB0:\n  r0 = sload \"nope\"\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("unknown tag"));
    }

    #[test]
    fn rejects_undefined_call() {
        let src = "func @main(0) {\nB0:\n  call @ghost() mods{} refs{}\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("undefined function"));
    }

    #[test]
    fn call_defaults_to_all_sets() {
        let src = "func @main(0) {\nB0:\n  call @main() \n  ret\n}\n";
        let m = parse_module(src).expect("parse");
        let call = &m.func(FuncId(0)).block(BlockId(0)).instrs[0];
        if let Instr::Call { mods, refs, .. } = call {
            assert!(mods.is_all() && refs.is_all());
        } else {
            panic!("expected call");
        }
    }
}
