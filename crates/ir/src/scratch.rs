//! Reusable, epoch-cleared scratch containers for pass-local state.
//!
//! The paper's premise — keep hot values out of memory — applies to the
//! compiler itself: per-invocation `HashMap`/`BTreeMap` tables and
//! `Vec::insert`/`remove` shifts dominate the allocator profile of the hot
//! pass loop. These containers trade a little space for zero steady-state
//! allocation:
//!
//! * [`DenseMap`]/[`DenseSet`] — side tables keyed by a small dense index
//!   (register number, block index, value number). Clearing is an epoch
//!   bump, not a free: each slot carries the epoch stamp it was written
//!   under, and a stale stamp reads as absent. `reset` is O(1) except on
//!   the (rare) epoch-counter wraparound.
//! * [`RewriteBuf`] — a retain-style block rebuilder: the block's
//!   instruction vector is swapped into the buffer and replayed through a
//!   callback that pushes the replacement sequence back, so arbitrary
//!   deletes/expansions cost one pass instead of one shift per edit.
//!
//! All containers keep their capacity across uses; a per-worker scratch
//! that has seen the largest function in a module never allocates again.

use crate::instr::Instr;
use crate::Block;

/// A map from a small dense index to `V`, cleared by epoch bump.
///
/// Absence is encoded by a stale epoch stamp, so `reset` does not touch
/// the value storage at all.
#[derive(Debug, Default)]
pub struct DenseMap<V> {
    stamps: Vec<u32>,
    vals: Vec<V>,
    epoch: u32,
}

impl<V: Copy + Default> DenseMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            stamps: Vec::new(),
            vals: Vec::new(),
            epoch: 1,
        }
    }

    /// Forgets all entries (epoch bump) and ensures capacity for keys
    /// `0..n` without further allocation.
    pub fn reset(&mut self, n: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could now collide with the new epoch.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.vals.resize(n, V::default());
        }
    }

    /// Inserts `v` at `k`, growing the table if `k` is beyond the reserved
    /// range (grows to the next power of two to amortize).
    pub fn insert(&mut self, k: u32, v: V) {
        let k = k as usize;
        if k >= self.stamps.len() {
            let n = (k + 1).next_power_of_two();
            self.stamps.resize(n, 0);
            self.vals.resize(n, V::default());
        }
        self.stamps[k] = self.epoch;
        self.vals[k] = v;
    }

    /// Looks up `k`.
    pub fn get(&self, k: u32) -> Option<V> {
        let k = k as usize;
        if self.stamps.get(k) == Some(&self.epoch) {
            Some(self.vals[k])
        } else {
            None
        }
    }

    /// Removes `k`, returning whether it was present.
    pub fn remove(&mut self, k: u32) -> bool {
        let k = k as usize;
        if self.stamps.get(k) == Some(&self.epoch) {
            self.stamps[k] = 0;
            true
        } else {
            false
        }
    }
}

/// A set of small dense indices, cleared by epoch bump.
#[derive(Debug, Default)]
pub struct DenseSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl DenseSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DenseSet {
            stamps: Vec::new(),
            epoch: 1,
        }
    }

    /// Forgets all members (epoch bump) and reserves `0..n`.
    pub fn reset(&mut self, n: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
    }

    /// Inserts `k`; returns true if it was newly added.
    pub fn insert(&mut self, k: u32) -> bool {
        let k = k as usize;
        if k >= self.stamps.len() {
            self.stamps.resize((k + 1).next_power_of_two(), 0);
        }
        let fresh = self.stamps[k] != self.epoch;
        self.stamps[k] = self.epoch;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, k: u32) -> bool {
        self.stamps.get(k as usize) == Some(&self.epoch)
    }

    /// Removes `k`, returning whether it was present.
    pub fn remove(&mut self, k: u32) -> bool {
        let k = k as usize;
        if self.stamps.get(k) == Some(&self.epoch) {
            self.stamps[k] = 0;
            true
        } else {
            false
        }
    }
}

/// A reusable buffer for rebuilding a block's instruction sequence in one
/// retain-style sweep.
///
/// `rebuild` swaps the block's instructions into the buffer, hands each
/// one to the callback together with the (now empty, capacity-preserving)
/// destination vector, and lets the callback decide what to emit: push the
/// instruction back unchanged, drop it, or surround it with new code. One
/// linear pass replaces any number of `Vec::insert`/`remove` shifts.
#[derive(Debug, Default)]
pub struct RewriteBuf {
    buf: Vec<Instr>,
}

impl RewriteBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds `block.instrs` through `f`, which receives each original
    /// instruction in order plus the destination vector to push into.
    pub fn rebuild(&mut self, block: &mut Block, mut f: impl FnMut(Instr, &mut Vec<Instr>)) {
        debug_assert!(self.buf.is_empty());
        std::mem::swap(&mut self.buf, &mut block.instrs);
        for instr in self.buf.drain(..) {
            f(instr, &mut block.instrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    #[test]
    fn dense_map_epochs() {
        let mut m: DenseMap<u32> = DenseMap::new();
        m.reset(4);
        assert_eq!(m.get(2), None);
        m.insert(2, 7);
        assert_eq!(m.get(2), Some(7));
        // Auto-grow beyond the reserved range.
        m.insert(100, 9);
        assert_eq!(m.get(100), Some(9));
        assert!(m.remove(2));
        assert!(!m.remove(2));
        assert_eq!(m.get(2), None);
        // Epoch bump forgets everything without touching values.
        m.insert(3, 1);
        m.reset(4);
        assert_eq!(m.get(3), None);
        assert_eq!(m.get(100), None);
    }

    #[test]
    fn dense_map_epoch_wraparound_is_safe() {
        let mut m: DenseMap<u32> = DenseMap::new();
        m.reset(2);
        m.insert(0, 5);
        // Force the counter to the wrap point.
        m.epoch = u32::MAX;
        m.insert(1, 6);
        m.reset(2);
        // After wrap, pre-wrap stamps must not alias the fresh epoch.
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(1), None);
        m.insert(1, 8);
        assert_eq!(m.get(1), Some(8));
    }

    #[test]
    fn dense_set_basics() {
        let mut s = DenseSet::new();
        s.reset(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(!s.contains(0));
        assert!(s.insert(64)); // auto-grow
        assert!(s.remove(1));
        assert!(!s.remove(1));
        s.reset(4);
        assert!(!s.contains(64));
    }

    #[test]
    fn rewrite_buf_rebuilds_in_one_pass() {
        let mut b = Block::new();
        b.instrs.push(Instr::IConst {
            dst: Reg(0),
            value: 1,
        });
        b.instrs.push(Instr::Nop);
        b.instrs.push(Instr::Ret { value: None });
        let mut rw = RewriteBuf::new();
        rw.rebuild(&mut b, |instr, out| match instr {
            Instr::Nop => {} // drop
            Instr::IConst { dst, value } => {
                // Expand: keep it and append a copy after it.
                out.push(Instr::IConst { dst, value });
                out.push(Instr::Copy {
                    dst: Reg(1),
                    src: dst,
                });
            }
            other => out.push(other),
        });
        assert_eq!(b.instrs.len(), 3);
        assert!(matches!(b.instrs[1], Instr::Copy { .. }));
        assert!(matches!(b.instrs[2], Instr::Ret { .. }));
        // Buffer is drained and reusable.
        rw.rebuild(&mut b, |i, out| out.push(i));
        assert_eq!(b.instrs.len(), 3);
    }
}
