//! Textual form of the IL.
//!
//! The printer and [parser](crate::parse) round-trip: for any well-formed
//! module `m`, `parse(&m.to_string())` reproduces `m` exactly. Tags are
//! printed by name in double quotes, `{*}` denotes the conservative
//! [`TagSet::All`](crate::TagSet::All), functions are `@name`, intrinsics
//! `$name`, and indirect call targets `*reg`.

use crate::function::{Function, Global, GlobalInit, Module};
use crate::instr::{Callee, Instr};
use crate::tag::{TagKind, TagSet, TagTable};
use std::fmt::{self, Write as _};

/// Prints a tag set using tag names from `tags`.
pub fn tagset_to_string(set: &TagSet, tags: &TagTable) -> String {
    match set {
        TagSet::All => "{*}".to_string(),
        TagSet::Set(s) => {
            let mut out = String::from("{");
            for (i, t) in s.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", tags.info(t).name);
            }
            out.push('}');
            out
        }
    }
}

/// Prints one instruction using tag and function names from the module.
pub fn instr_to_string(instr: &Instr, module: &Module) -> String {
    let tags = &module.tags;
    let tn = |t: &crate::tag::TagId| format!("\"{}\"", tags.info(*t).name);
    match instr {
        Instr::IConst { dst, value } => format!("{dst} = iconst {value}"),
        Instr::FConst { dst, value } => format!("{dst} = fconst {value:?}"),
        Instr::FuncAddr { dst, func } => {
            format!("{dst} = funcaddr @{}", module.func(*func).name)
        }
        Instr::Copy { dst, src } => format!("{dst} = copy {src}"),
        Instr::Unary { op, dst, src } => format!("{dst} = {} {src}", op.mnemonic()),
        Instr::Binary { op, dst, lhs, rhs } => {
            format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
        }
        Instr::Cmp { op, dst, lhs, rhs } => {
            format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
        }
        Instr::CLoad { dst, tag } => format!("{dst} = cload {}", tn(tag)),
        Instr::SLoad { dst, tag } => format!("{dst} = sload {}", tn(tag)),
        Instr::SStore { src, tag } => format!("sstore {src}, {}", tn(tag)),
        Instr::Load {
            dst,
            addr,
            tags: ts,
        } => {
            format!("{dst} = load [{addr}] {}", tagset_to_string(ts, tags))
        }
        Instr::Store {
            src,
            addr,
            tags: ts,
        } => {
            format!("store {src}, [{addr}] {}", tagset_to_string(ts, tags))
        }
        Instr::Lea { dst, tag } => format!("{dst} = lea {}", tn(tag)),
        Instr::PtrAdd { dst, base, offset } => format!("{dst} = ptradd {base}, {offset}"),
        Instr::Alloc { dst, size, site } => format!("{dst} = alloc {size}, {}", tn(site)),
        Instr::Call {
            dst,
            callee,
            args,
            mods,
            refs,
        } => {
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{d} = ");
            }
            s.push_str("call ");
            match callee {
                Callee::Direct(f) => {
                    let _ = write!(s, "@{}", module.func(*f).name);
                }
                Callee::Indirect(r) => {
                    let _ = write!(s, "*{r}");
                }
                Callee::Intrinsic(i) => {
                    let _ = write!(s, "${}", i.name());
                }
            }
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            s.push(')');
            let _ = write!(
                s,
                " mods{} refs{}",
                tagset_to_string(mods, tags),
                tagset_to_string(refs, tags)
            );
            s
        }
        Instr::Phi { dst, args } => {
            let mut s = format!("{dst} = phi [");
            for (i, (b, r)) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{b}: {r}");
            }
            s.push(']');
            s
        }
        Instr::Jump { target } => format!("jump {target}"),
        Instr::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("branch {cond}, {then_bb}, {else_bb}")
        }
        Instr::Ret { value: Some(r) } => format!("ret {r}"),
        Instr::Ret { value: None } => "ret".to_string(),
        Instr::Nop => "nop".to_string(),
    }
}

fn write_function(out: &mut String, f: &Function, module: &Module) {
    let result = if f.has_result { " result" } else { "" };
    let _ = writeln!(out, "func @{}({}){} {{", f.name, f.arity, result);
    for id in f.block_ids() {
        let _ = writeln!(out, "{id}:");
        for instr in &f.block(id).instrs {
            let _ = writeln!(out, "  {}", instr_to_string(instr, module));
        }
    }
    let _ = writeln!(out, "}}");
}

fn write_tag_decl(out: &mut String, table: &TagTable) {
    for (_, info) in table.iter() {
        let kind = match info.kind {
            TagKind::Global => "global".to_string(),
            TagKind::Local { owner } => format!("local owner={owner}"),
            TagKind::Param { owner } => format!("param owner={owner}"),
            TagKind::Heap { site } => format!("heap site={site}"),
            TagKind::Spill { owner } => format!("spill owner={owner}"),
        };
        let addressed = if info.address_taken { " addressed" } else { "" };
        let _ = writeln!(
            out,
            "tag \"{}\" {} size={}{}",
            info.name, kind, info.size, addressed
        );
    }
}

fn write_global(out: &mut String, g: &Global, tags: &TagTable) {
    let _ = write!(out, "global \"{}\" ", tags.info(g.tag).name);
    match &g.init {
        GlobalInit::Zero => {
            let _ = writeln!(out, "zero");
        }
        GlobalInit::Ints(vs) => {
            let _ = write!(out, "ints");
            for v in vs {
                let _ = write!(out, " {v}");
            }
            let _ = writeln!(out);
        }
        GlobalInit::Floats(vs) => {
            let _ = write!(out, "floats");
            for v in vs {
                let _ = write!(out, " {v:?}");
            }
            let _ = writeln!(out);
        }
    }
}

/// Renders the whole module in the textual IL syntax.
pub fn module_to_string(module: &Module) -> String {
    let mut out = String::new();
    write_tag_decl(&mut out, &module.tags);
    for g in &module.globals {
        write_global(&mut out, g, &module.tags);
    }
    for f in &module.funcs {
        write_function(&mut out, f, module);
    }
    out
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&module_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::function::{GlobalInit, Module};
    use crate::instr::BinOp;

    #[test]
    fn prints_module() {
        let mut m = Module::new();
        let g = m.add_global("x", 1, GlobalInit::Zero);
        let mut b = FunctionBuilder::new("main", 0);
        let v = b.sload(g);
        let one = b.iconst(1);
        let s = b.binary(BinOp::Add, v, one);
        b.sstore(s, g);
        b.ret(None);
        m.add_func(b.finish());
        let text = m.to_string();
        assert!(text.contains("tag \"g:x\" global size=1"));
        assert!(text.contains("global \"g:x\" zero"));
        assert!(text.contains("func @main(0) {"));
        assert!(text.contains("r0 = sload \"g:x\""));
        assert!(text.contains("sstore r2, \"g:x\""));
    }
}
