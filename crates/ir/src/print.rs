//! Textual form of the IL.
//!
//! The printer and [parser](crate::parse) round-trip: for any well-formed
//! module `m`, `parse(&m.to_string())` reproduces `m` exactly. Tags are
//! printed by name in double quotes, `{*}` denotes the conservative
//! [`TagSet::All`](crate::TagSet::All), functions are `@name`, intrinsics
//! `$name`, and indirect call targets `*reg`.
//!
//! Rendering appends to a caller-owned `String` ([`write_instr`],
//! [`write_tagset`]) so that printing a whole module reuses one growing
//! buffer; the `*_to_string` helpers are thin allocating wrappers for
//! one-off callers.

use crate::function::{Function, Global, GlobalInit, Module};
use crate::instr::{Callee, Instr};
use crate::tag::{TagKind, TagSet, TagTable};
use std::fmt::{self, Write as _};

/// Appends a tag set, using tag names from `tags`, to `out`.
pub fn write_tagset(out: &mut String, set: &TagSet, tags: &TagTable) {
    match set {
        TagSet::All => out.push_str("{*}"),
        TagSet::Set(s) => {
            out.push('{');
            for (i, t) in s.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", tags.info(t).name);
            }
            out.push('}');
        }
    }
}

/// Prints a tag set using tag names from `tags`.
pub fn tagset_to_string(set: &TagSet, tags: &TagTable) -> String {
    let mut out = String::new();
    write_tagset(&mut out, set, tags);
    out
}

/// Appends one instruction, using tag and function names from the module,
/// to `out`.
pub fn write_instr(out: &mut String, instr: &Instr, module: &Module) {
    let tags = &module.tags;
    macro_rules! w {
        ($($arg:tt)*) => {
            let _ = write!(out, $($arg)*);
        };
    }
    macro_rules! tag {
        ($t:expr) => {
            w!("\"{}\"", tags.info(*$t).name);
        };
    }
    match instr {
        Instr::IConst { dst, value } => {
            w!("{dst} = iconst {value}");
        }
        Instr::FConst { dst, value } => {
            w!("{dst} = fconst {value:?}");
        }
        Instr::FuncAddr { dst, func } => {
            w!("{dst} = funcaddr @{}", module.func(*func).name);
        }
        Instr::Copy { dst, src } => {
            w!("{dst} = copy {src}");
        }
        Instr::Unary { op, dst, src } => {
            w!("{dst} = {} {src}", op.mnemonic());
        }
        Instr::Binary { op, dst, lhs, rhs } => {
            w!("{dst} = {} {lhs}, {rhs}", op.mnemonic());
        }
        Instr::Cmp { op, dst, lhs, rhs } => {
            w!("{dst} = {} {lhs}, {rhs}", op.mnemonic());
        }
        Instr::CLoad { dst, tag } => {
            w!("{dst} = cload ");
            tag!(tag);
        }
        Instr::SLoad { dst, tag } => {
            w!("{dst} = sload ");
            tag!(tag);
        }
        Instr::SStore { src, tag } => {
            w!("sstore {src}, ");
            tag!(tag);
        }
        Instr::Load {
            dst,
            addr,
            tags: ts,
        } => {
            w!("{dst} = load [{addr}] ");
            write_tagset(out, ts, tags);
        }
        Instr::Store {
            src,
            addr,
            tags: ts,
        } => {
            w!("store {src}, [{addr}] ");
            write_tagset(out, ts, tags);
        }
        Instr::Lea { dst, tag } => {
            w!("{dst} = lea ");
            tag!(tag);
        }
        Instr::PtrAdd { dst, base, offset } => {
            w!("{dst} = ptradd {base}, {offset}");
        }
        Instr::Alloc { dst, size, site } => {
            w!("{dst} = alloc {size}, ");
            tag!(site);
        }
        Instr::Call {
            dst,
            callee,
            args,
            mods,
            refs,
        } => {
            if let Some(d) = dst {
                w!("{d} = ");
            }
            out.push_str("call ");
            match callee {
                Callee::Direct(f) => {
                    w!("@{}", module.func(*f).name);
                }
                Callee::Indirect(r) => {
                    w!("*{r}");
                }
                Callee::Intrinsic(i) => {
                    w!("${}", i.name());
                }
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                w!("{a}");
            }
            out.push(')');
            out.push_str(" mods");
            write_tagset(out, mods, tags);
            out.push_str(" refs");
            write_tagset(out, refs, tags);
        }
        Instr::Phi { dst, args } => {
            w!("{dst} = phi [");
            for (i, (b, r)) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                w!("{b}: {r}");
            }
            out.push(']');
        }
        Instr::Jump { target } => {
            w!("jump {target}");
        }
        Instr::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            w!("branch {cond}, {then_bb}, {else_bb}");
        }
        Instr::Ret { value: Some(r) } => {
            w!("ret {r}");
        }
        Instr::Ret { value: None } => out.push_str("ret"),
        Instr::Nop => out.push_str("nop"),
    }
}

/// Prints one instruction using tag and function names from the module.
pub fn instr_to_string(instr: &Instr, module: &Module) -> String {
    let mut out = String::new();
    write_instr(&mut out, instr, module);
    out
}

fn write_function(out: &mut String, f: &Function, module: &Module) {
    let result = if f.has_result { " result" } else { "" };
    let _ = writeln!(out, "func @{}({}){} {{", f.name, f.arity, result);
    for id in f.block_ids() {
        let _ = writeln!(out, "{id}:");
        for instr in &f.block(id).instrs {
            out.push_str("  ");
            write_instr(out, instr, module);
            out.push('\n');
        }
    }
    let _ = writeln!(out, "}}");
}

fn write_tag_decl(out: &mut String, table: &TagTable) {
    for (_, info) in table.iter() {
        out.push_str("tag \"");
        out.push_str(&info.name);
        out.push_str("\" ");
        match info.kind {
            TagKind::Global => out.push_str("global"),
            TagKind::Local { owner } => {
                let _ = write!(out, "local owner={owner}");
            }
            TagKind::Param { owner } => {
                let _ = write!(out, "param owner={owner}");
            }
            TagKind::Heap { site } => {
                let _ = write!(out, "heap site={site}");
            }
            TagKind::Spill { owner } => {
                let _ = write!(out, "spill owner={owner}");
            }
        }
        let addressed = if info.address_taken { " addressed" } else { "" };
        let _ = writeln!(out, " size={}{}", info.size, addressed);
    }
}

fn write_global(out: &mut String, g: &Global, tags: &TagTable) {
    let _ = write!(out, "global \"{}\" ", tags.info(g.tag).name);
    match &g.init {
        GlobalInit::Zero => {
            let _ = writeln!(out, "zero");
        }
        GlobalInit::Ints(vs) => {
            let _ = write!(out, "ints");
            for v in vs {
                let _ = write!(out, " {v}");
            }
            let _ = writeln!(out);
        }
        GlobalInit::Floats(vs) => {
            let _ = write!(out, "floats");
            for v in vs {
                let _ = write!(out, " {v:?}");
            }
            let _ = writeln!(out);
        }
    }
}

/// Renders the whole module in the textual IL syntax.
pub fn module_to_string(module: &Module) -> String {
    let mut out = String::new();
    write_tag_decl(&mut out, &module.tags);
    for g in &module.globals {
        write_global(&mut out, g, &module.tags);
    }
    for f in &module.funcs {
        write_function(&mut out, f, module);
    }
    out
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&module_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::function::{GlobalInit, Module};
    use crate::instr::BinOp;

    #[test]
    fn prints_module() {
        let mut m = Module::new();
        let g = m.add_global("x", 1, GlobalInit::Zero);
        let mut b = FunctionBuilder::new("main", 0);
        let v = b.sload(g);
        let one = b.iconst(1);
        let s = b.binary(BinOp::Add, v, one);
        b.sstore(s, g);
        b.ret(None);
        m.add_func(b.finish());
        let text = m.to_string();
        assert!(text.contains("tag \"g:x\" global size=1"));
        assert!(text.contains("global \"g:x\" zero"));
        assert!(text.contains("func @main(0) {"));
        assert!(text.contains("r0 = sload \"g:x\""));
        assert!(text.contains("sstore r2, \"g:x\""));
    }

    #[test]
    fn write_forms_match_to_string_forms() {
        let mut m = Module::new();
        let g = m.add_global("x", 4, GlobalInit::Ints(vec![1, 2, 3, 4]));
        let mut b = FunctionBuilder::new("main", 0);
        let base = b.lea(g);
        let idx = b.iconst(2);
        let addr = b.ptr_add(base, idx);
        let v = b.load(addr, crate::TagSet::single(g));
        b.ret(Some(v));
        b.returns_value();
        m.add_func(b.finish());
        for f in &m.funcs {
            for id in f.block_ids() {
                for instr in &f.block(id).instrs {
                    let mut buf = String::from("  ");
                    crate::print::write_instr(&mut buf, instr, &m);
                    assert_eq!(buf[2..], crate::print::instr_to_string(instr, &m));
                }
            }
        }
    }
}
