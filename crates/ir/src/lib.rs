//! The intermediate language (IL) of the register-promotion compiler.
//!
//! This crate is the foundation of a reproduction of *Register Promotion in
//! C Programs* (Cooper & Lu, PLDI 1997). The IL mirrors the paper's ILOC
//! dialect in the two ways that matter to the paper:
//!
//! 1. **Tags.** Every memory operation carries a list of *tags* — textual
//!    names for the memory locations it may use — and every call site
//!    carries MOD/REF tag lists summarizing the callee's side effects
//!    ([`TagSet`], [`TagTable`]).
//! 2. **A memory-op hierarchy** (the paper's Table 1): `iconst` (*iLoad*,
//!    known constant, no memory), [`Instr::CLoad`] (invariant unknown
//!    value), [`Instr::SLoad`]/[`Instr::SStore`] (scalar, explicit single
//!    location), and [`Instr::Load`]/[`Instr::Store`] (general pointer-based
//!    access).
//!
//! The IL has a round-trippable textual form; see [`parse_module`] and the
//! [`std::fmt::Display`] impl on [`Module`]:
//!
//! ```
//! let src = r#"
//! tag "g:x" global size=1
//! global "g:x" ints 41
//! func @main(0) result {
//! B0:
//!   r0 = sload "g:x"
//!   r1 = iconst 1
//!   r2 = add r0, r1
//!   ret r2
//! }
//! "#;
//! let module = ir::parse_module(src)?;
//! ir::validate(&module)?;
//! assert_eq!(ir::parse_module(&module.to_string())?, module);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod function;
pub mod hash;
mod instr;
mod parse;
mod print;
mod scratch;
mod tag;
mod validate;

pub use builder::FunctionBuilder;
pub use function::{Block, BodyStats, Function, Global, GlobalInit, Module};
pub use instr::{
    BinOp, BlockId, Callee, CmpOp, FuncId, Instr, Intrinsic, Reg, Successors, UnaryOp,
};
pub use parse::{parse_module, ParseIlError};
pub use print::{instr_to_string, module_to_string, tagset_to_string, write_instr, write_tagset};
pub use scratch::{DenseMap, DenseSet, RewriteBuf};
pub use tag::{DenseTagSet, TagId, TagInfo, TagKind, TagSet, TagTable, INLINE_CAP};
pub use validate::{validate, ValidateError};
