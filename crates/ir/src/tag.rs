//! Memory tags and tag sets.
//!
//! A *tag* is a textual name for a memory location, exactly as in the paper:
//! every memory operation in the IL carries a list of tags naming the
//! locations it may use, and procedure calls carry MOD/REF tag lists
//! summarizing their side effects. Tags are interned into a per-module
//! [`TagTable`] and referenced by the lightweight [`TagId`] handle.

use std::collections::BTreeSet;
use std::fmt;

/// A handle to an interned memory tag.
///
/// `TagId`s are only meaningful relative to the [`TagTable`] of the module
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// Returns the raw index of this tag.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What kind of storage a tag names.
///
/// The distinction matters to the analyses: only [`TagKind::Global`] tags are
/// visible everywhere, a local is visible only in its owning function and the
/// call-graph descendants of that function, and heap tags name all objects
/// created at one allocation site (the paper models "heap memory ... with a
/// single name for each call-site that can generate a new heap address").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum TagKind {
    /// A global variable (or global array).
    Global,
    /// A local variable owned by the function with the given index.
    ///
    /// Only locals whose address is taken (or arrays) receive tags; other
    /// locals live purely in virtual registers.
    Local { owner: u32 },
    /// A formal parameter whose address is taken, owned by a function.
    Param { owner: u32 },
    /// All heap objects allocated at one static allocation site.
    Heap { site: u32 },
    /// A compiler-introduced spill slot (from the register allocator).
    Spill { owner: u32 },
}

impl TagKind {
    /// True if this tag names storage local to a single activation.
    pub fn is_local(&self) -> bool {
        matches!(self, TagKind::Local { .. } | TagKind::Param { .. } | TagKind::Spill { .. })
    }

    /// The owning function index for local-ish tags.
    pub fn owner(&self) -> Option<u32> {
        match *self {
            TagKind::Local { owner } | TagKind::Param { owner } | TagKind::Spill { owner } => {
                Some(owner)
            }
            _ => None,
        }
    }
}

/// Interned information about a single tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagInfo {
    /// Human-readable name, unique within the table (e.g. `"g:count"`,
    /// `"main.buf"`, `"heap@3"`).
    pub name: String,
    /// The kind of storage named by the tag.
    pub kind: TagKind,
    /// Number of value cells in the object (1 for scalars).
    pub size: usize,
    /// Whether the program ever takes this location's address.
    ///
    /// Address-taken tags may be reached through pointers; tags that are not
    /// address-taken can only be referenced explicitly by name, which is what
    /// makes them trivially promotable.
    pub address_taken: bool,
}

/// The per-module tag interner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagTable {
    tags: Vec<TagInfo>,
}

impl TagTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a new tag and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a tag with the same name already exists; tag names are
    /// required to be unique so the textual IL round-trips.
    pub fn intern(&mut self, name: impl Into<String>, kind: TagKind, size: usize) -> TagId {
        let name = name.into();
        assert!(
            self.lookup(&name).is_none(),
            "duplicate tag name: {name}"
        );
        let id = TagId(self.tags.len() as u32);
        self.tags.push(TagInfo { name, kind, size, address_taken: false });
        id
    }

    /// Looks a tag up by name.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.tags
            .iter()
            .position(|t| t.name == name)
            .map(|i| TagId(i as u32))
    }

    /// Returns the info for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn info(&self, id: TagId) -> &TagInfo {
        &self.tags[id.index()]
    }

    /// Marks `id` as address-taken.
    pub fn mark_address_taken(&mut self, id: TagId) {
        self.tags[id.index()].address_taken = true;
    }

    /// Number of interned tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if no tags have been interned.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over `(TagId, &TagInfo)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &TagInfo)> {
        self.tags
            .iter()
            .enumerate()
            .map(|(i, t)| (TagId(i as u32), t))
    }

    /// All tags whose address is taken — the universe that a wild pointer may
    /// reference. Heap tags are included unconditionally.
    pub fn address_taken_set(&self) -> TagSet {
        TagSet::from_iter(self.iter().filter_map(|(id, t)| {
            if t.address_taken || matches!(t.kind, TagKind::Heap { .. }) {
                Some(id)
            } else {
                None
            }
        }))
    }

    /// All global tags.
    pub fn globals(&self) -> TagSet {
        TagSet::from_iter(
            self.iter()
                .filter(|(_, t)| matches!(t.kind, TagKind::Global))
                .map(|(id, _)| id),
        )
    }
}

/// A set of tags attached to a memory operation or call site.
///
/// `TagSet::All` is the conservative "may touch anything" value the front end
/// uses before analysis has run; the analyses replace it with explicit sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TagSet {
    /// May reference every memory location (unknown).
    All,
    /// May reference exactly the listed locations.
    Set(BTreeSet<TagId>),
}

impl Default for TagSet {
    fn default() -> Self {
        TagSet::empty()
    }
}

impl TagSet {
    /// The empty set.
    pub fn empty() -> Self {
        TagSet::Set(BTreeSet::new())
    }

    /// A singleton set.
    pub fn single(tag: TagId) -> Self {
        let mut s = BTreeSet::new();
        s.insert(tag);
        TagSet::Set(s)
    }

    /// True if this is the conservative universe.
    pub fn is_all(&self) -> bool {
        matches!(self, TagSet::All)
    }

    /// True if the set is known to be empty.
    pub fn is_empty(&self) -> bool {
        match self {
            TagSet::All => false,
            TagSet::Set(s) => s.is_empty(),
        }
    }

    /// Number of explicit tags, or `None` for [`TagSet::All`].
    pub fn len(&self) -> Option<usize> {
        match self {
            TagSet::All => None,
            TagSet::Set(s) => Some(s.len()),
        }
    }

    /// If the set contains exactly one tag, returns it.
    pub fn as_singleton(&self) -> Option<TagId> {
        match self {
            TagSet::Set(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// True if `tag` may be in the set.
    pub fn contains(&self, tag: TagId) -> bool {
        match self {
            TagSet::All => true,
            TagSet::Set(s) => s.contains(&tag),
        }
    }

    /// Inserts a tag (no-op on [`TagSet::All`]).
    pub fn insert(&mut self, tag: TagId) {
        if let TagSet::Set(s) = self {
            s.insert(tag);
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &TagSet) {
        match (&mut *self, other) {
            (TagSet::All, _) => {}
            (_, TagSet::All) => *self = TagSet::All,
            (TagSet::Set(a), TagSet::Set(b)) => a.extend(b.iter().copied()),
        }
    }

    /// Intersection with an explicit universe, used to concretize
    /// [`TagSet::All`] once the analysis knows the address-taken universe.
    pub fn intersect_universe(&self, universe: &BTreeSet<TagId>) -> TagSet {
        match self {
            TagSet::All => TagSet::Set(universe.clone()),
            TagSet::Set(s) => TagSet::Set(s.intersection(universe).copied().collect()),
        }
    }

    /// Iterates explicit members (empty iterator for [`TagSet::All`]; callers
    /// must check [`TagSet::is_all`] first when that distinction matters).
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        match self {
            TagSet::All => None.into_iter().flatten(),
            TagSet::Set(s) => Some(s.iter().copied()).into_iter().flatten(),
        }
    }
}

impl FromIterator<TagId> for TagSet {
    fn from_iter<I: IntoIterator<Item = TagId>>(iter: I) -> Self {
        TagSet::Set(iter.into_iter().collect())
    }
}

impl Extend<TagId> for TagSet {
    fn extend<I: IntoIterator<Item = TagId>>(&mut self, iter: I) {
        if let TagSet::Set(s) = self {
            s.extend(iter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut t = TagTable::new();
        let a = t.intern("g:a", TagKind::Global, 1);
        let b = t.intern("g:b", TagKind::Global, 4);
        assert_ne!(a, b);
        assert_eq!(t.lookup("g:a"), Some(a));
        assert_eq!(t.lookup("g:c"), None);
        assert_eq!(t.info(b).size, 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate tag name")]
    fn duplicate_names_panic() {
        let mut t = TagTable::new();
        t.intern("x", TagKind::Global, 1);
        t.intern("x", TagKind::Global, 1);
    }

    #[test]
    fn address_taken_universe_includes_heap() {
        let mut t = TagTable::new();
        let a = t.intern("a", TagKind::Global, 1);
        let h = t.intern("heap@0", TagKind::Heap { site: 0 }, 1);
        let b = t.intern("b", TagKind::Global, 1);
        t.mark_address_taken(a);
        let u = t.address_taken_set();
        assert!(u.contains(a));
        assert!(u.contains(h));
        assert!(!u.contains(b));
    }

    #[test]
    fn tagset_union_and_all() {
        let a = TagId(0);
        let b = TagId(1);
        let mut s = TagSet::single(a);
        s.union_with(&TagSet::single(b));
        assert!(s.contains(a) && s.contains(b));
        assert_eq!(s.len(), Some(2));
        s.union_with(&TagSet::All);
        assert!(s.is_all());
        assert!(s.contains(TagId(99)));
    }

    #[test]
    fn tagset_singleton() {
        assert_eq!(TagSet::single(TagId(3)).as_singleton(), Some(TagId(3)));
        assert_eq!(TagSet::empty().as_singleton(), None);
        assert_eq!(TagSet::All.as_singleton(), None);
    }

    #[test]
    fn intersect_universe_concretizes_all() {
        let mut u = BTreeSet::new();
        u.insert(TagId(1));
        u.insert(TagId(2));
        let s = TagSet::All.intersect_universe(&u);
        assert_eq!(s.len(), Some(2));
        let t = TagSet::single(TagId(1)).intersect_universe(&u);
        assert_eq!(t.as_singleton(), Some(TagId(1)));
    }
}
