//! Memory tags and tag sets.
//!
//! A *tag* is a textual name for a memory location, exactly as in the paper:
//! every memory operation in the IL carries a list of tags naming the
//! locations it may use, and procedure calls carry MOD/REF tag lists
//! summarizing their side effects. Tags are interned into a per-module
//! [`TagTable`] and referenced by the lightweight [`TagId`] handle.
//!
//! Tag sets are the hottest data structure in the reproduction: every
//! MOD/REF fixpoint, points-to round, and §3.1 promotion equation is a loop
//! of unions, intersections and differences over them. [`DenseTagSet`]
//! therefore uses a hybrid representation — a sorted inline array for small
//! sets (the common case: most memory operations touch a handful of tags)
//! that spills to a dense `Vec<u64>` word bitset once a set grows past
//! [`INLINE_CAP`] tags, where union/intersect/difference/subset become
//! word-wise kernels.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A handle to an interned memory tag.
///
/// `TagId`s are only meaningful relative to the [`TagTable`] of the module
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// Returns the raw index of this tag.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What kind of storage a tag names.
///
/// The distinction matters to the analyses: only [`TagKind::Global`] tags are
/// visible everywhere, a local is visible only in its owning function and the
/// call-graph descendants of that function, and heap tags name all objects
/// created at one allocation site (the paper models "heap memory ... with a
/// single name for each call-site that can generate a new heap address").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum TagKind {
    /// A global variable (or global array).
    Global,
    /// A local variable owned by the function with the given index.
    ///
    /// Only locals whose address is taken (or arrays) receive tags; other
    /// locals live purely in virtual registers.
    Local { owner: u32 },
    /// A formal parameter whose address is taken, owned by a function.
    Param { owner: u32 },
    /// All heap objects allocated at one static allocation site.
    Heap { site: u32 },
    /// A compiler-introduced spill slot (from the register allocator).
    Spill { owner: u32 },
}

impl TagKind {
    /// True if this tag names storage local to a single activation.
    pub fn is_local(&self) -> bool {
        matches!(
            self,
            TagKind::Local { .. } | TagKind::Param { .. } | TagKind::Spill { .. }
        )
    }

    /// The owning function index for local-ish tags.
    pub fn owner(&self) -> Option<u32> {
        match *self {
            TagKind::Local { owner } | TagKind::Param { owner } | TagKind::Spill { owner } => {
                Some(owner)
            }
            _ => None,
        }
    }
}

/// Interned information about a single tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagInfo {
    /// Human-readable name, unique within the table (e.g. `"g:count"`,
    /// `"main.buf"`, `"heap@3"`).
    pub name: String,
    /// The kind of storage named by the tag.
    pub kind: TagKind,
    /// Number of value cells in the object (1 for scalars).
    pub size: usize,
    /// Whether the program ever takes this location's address.
    ///
    /// Address-taken tags may be reached through pointers; tags that are not
    /// address-taken can only be referenced explicitly by name, which is what
    /// makes them trivially promotable.
    pub address_taken: bool,
}

/// The per-module tag interner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagTable {
    tags: Vec<TagInfo>,
}

impl TagTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a new tag and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a tag with the same name already exists; tag names are
    /// required to be unique so the textual IL round-trips.
    pub fn intern(&mut self, name: impl Into<String>, kind: TagKind, size: usize) -> TagId {
        let name = name.into();
        assert!(self.lookup(&name).is_none(), "duplicate tag name: {name}");
        let id = TagId(self.tags.len() as u32);
        self.tags.push(TagInfo {
            name,
            kind,
            size,
            address_taken: false,
        });
        id
    }

    /// Looks a tag up by name.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.tags
            .iter()
            .position(|t| t.name == name)
            .map(|i| TagId(i as u32))
    }

    /// Returns the info for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn info(&self, id: TagId) -> &TagInfo {
        &self.tags[id.index()]
    }

    /// Marks `id` as address-taken.
    pub fn mark_address_taken(&mut self, id: TagId) {
        self.tags[id.index()].address_taken = true;
    }

    /// Number of interned tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if no tags have been interned.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over `(TagId, &TagInfo)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &TagInfo)> {
        self.tags
            .iter()
            .enumerate()
            .map(|(i, t)| (TagId(i as u32), t))
    }

    /// All tags whose address is taken — the universe that a wild pointer may
    /// reference. Heap tags are included unconditionally.
    pub fn address_taken_set(&self) -> DenseTagSet {
        self.iter()
            .filter_map(|(id, t)| {
                if t.address_taken || matches!(t.kind, TagKind::Heap { .. }) {
                    Some(id)
                } else {
                    None
                }
            })
            .collect()
    }

    /// All global tags.
    pub fn globals(&self) -> DenseTagSet {
        self.iter()
            .filter(|(_, t)| matches!(t.kind, TagKind::Global))
            .map(|(id, _)| id)
            .collect()
    }
}

/// Small sets stay inline up to this many members; larger sets spill to the
/// word bitset representation.
pub const INLINE_CAP: usize = 8;

const WORD_BITS: usize = 64;

/// A finite set of [`TagId`]s with a hybrid small/dense representation.
///
/// * **Inline:** at most [`INLINE_CAP`] members kept as a sorted array — no
///   heap allocation, membership by short binary search.
/// * **Bits:** more than [`INLINE_CAP`] members kept as a dense `Vec<u64>`
///   bitset indexed by raw tag id, so union / intersection / difference /
///   subset run word-wise.
///
/// The representation is *canonical*: a set holds `Inline` iff it has at
/// most [`INLINE_CAP`] members, and a `Bits` set never has trailing zero
/// words. Shrinking operations (intersection, difference) re-pack into the
/// inline form when the result is small again, so equality and hashing can
/// compare representations directly and two equal sets are always
/// structurally identical.
#[derive(Debug, Clone)]
pub struct DenseTagSet {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// `ids[..len]` is sorted and duplicate-free; `len <= INLINE_CAP`.
    Inline { len: u8, ids: [u32; INLINE_CAP] },
    /// Dense bitset over raw tag ids; `len > INLINE_CAP`, `len` is the
    /// population count, and the last word is non-zero.
    Bits { words: Vec<u64>, len: u32 },
}

impl Default for DenseTagSet {
    fn default() -> Self {
        DenseTagSet::new()
    }
}

impl DenseTagSet {
    /// The empty set.
    pub fn new() -> Self {
        DenseTagSet {
            repr: Repr::Inline {
                len: 0,
                ids: [0; INLINE_CAP],
            },
        }
    }

    /// A one-element set.
    pub fn singleton(tag: TagId) -> Self {
        let mut s = DenseTagSet::new();
        s.insert(tag);
        s
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Bits { len, .. } => *len as usize,
        }
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the set currently uses the spilled bitset representation.
    /// Exposed for tests asserting the canonical-form invariant.
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, Repr::Bits { .. })
    }

    /// Membership test.
    pub fn contains(&self, tag: TagId) -> bool {
        match &self.repr {
            Repr::Inline { len, ids } => ids[..*len as usize].binary_search(&tag.0).is_ok(),
            Repr::Bits { words, .. } => {
                let (w, b) = (tag.0 as usize / WORD_BITS, tag.0 as usize % WORD_BITS);
                w < words.len() && words[w] & (1u64 << b) != 0
            }
        }
    }

    /// If the set has exactly one member, returns it.
    pub fn as_singleton(&self) -> Option<TagId> {
        match &self.repr {
            Repr::Inline { len: 1, ids } => Some(TagId(ids[0])),
            _ => None,
        }
    }

    /// Inserts `tag`; returns true if it was not already present.
    pub fn insert(&mut self, tag: TagId) -> bool {
        match &mut self.repr {
            Repr::Inline { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&tag.0) {
                    Ok(_) => false,
                    Err(pos) => {
                        if n < INLINE_CAP {
                            ids.copy_within(pos..n, pos + 1);
                            ids[pos] = tag.0;
                            *len += 1;
                        } else {
                            // 9th member: spill to the bitset.
                            let mut words = Vec::new();
                            for id in ids.iter().copied() {
                                set_bit(&mut words, id);
                            }
                            set_bit(&mut words, tag.0);
                            self.repr = Repr::Bits {
                                words,
                                len: (INLINE_CAP + 1) as u32,
                            };
                        }
                        true
                    }
                }
            }
            Repr::Bits { words, len } => {
                let (w, b) = (tag.0 as usize / WORD_BITS, tag.0 as usize % WORD_BITS);
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let mask = 1u64 << b;
                if words[w] & mask != 0 {
                    false
                } else {
                    words[w] |= mask;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// In-place union; returns true if any member was added.
    pub fn union_with(&mut self, other: &DenseTagSet) -> bool {
        if other.is_empty() {
            return false;
        }
        match (&mut self.repr, &other.repr) {
            (Repr::Inline { .. }, Repr::Inline { len: bl, ids: bids }) => {
                let mut changed = false;
                for id in bids[..*bl as usize].iter().copied() {
                    changed |= self.insert(TagId(id));
                }
                changed
            }
            (Repr::Inline { len: al, ids: aids }, Repr::Bits { words: bw, len: _ }) => {
                // Result has at least other.len() > INLINE_CAP members: go
                // straight to the bitset and OR word-wise.
                let mut words = bw.clone();
                let mut added = other.len();
                for id in aids[..*al as usize].iter().copied() {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    if w >= words.len() {
                        words.resize(w + 1, 0);
                    }
                    if words[w] & (1u64 << b) == 0 {
                        words[w] |= 1u64 << b;
                        added += 1;
                    }
                }
                let changed = added > *al as usize;
                self.repr = Repr::Bits {
                    words,
                    len: added as u32,
                };
                changed
            }
            (Repr::Bits { words: aw, len: al }, Repr::Inline { len: bl, ids: bids }) => {
                let mut changed = false;
                for id in bids[..*bl as usize].iter().copied() {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    if w >= aw.len() {
                        aw.resize(w + 1, 0);
                    }
                    if aw[w] & (1u64 << b) == 0 {
                        aw[w] |= 1u64 << b;
                        *al += 1;
                        changed = true;
                    }
                }
                changed
            }
            (Repr::Bits { words: aw, len: al }, Repr::Bits { words: bw, len: _ }) => {
                if bw.len() > aw.len() {
                    aw.resize(bw.len(), 0);
                }
                let mut changed = false;
                let mut pop = 0u32;
                for (a, b) in aw.iter_mut().zip(bw.iter()) {
                    let merged = *a | *b;
                    changed |= merged != *a;
                    *a = merged;
                    pop += merged.count_ones();
                }
                for a in aw.iter().skip(bw.len()) {
                    pop += a.count_ones();
                }
                *al = pop;
                changed
            }
        }
    }

    /// Set intersection, re-packed to canonical form.
    pub fn intersect(&self, other: &DenseTagSet) -> DenseTagSet {
        match (&self.repr, &other.repr) {
            (Repr::Bits { words: aw, len: _ }, Repr::Bits { words: bw, len: _ }) => {
                let n = aw.len().min(bw.len());
                let words: Vec<u64> = aw[..n].iter().zip(&bw[..n]).map(|(a, b)| a & b).collect();
                DenseTagSet::from_words(words)
            }
            // At least one side is inline: iterate the smaller side.
            _ => {
                let (small, big) = if self.len() <= other.len() {
                    (self, other)
                } else {
                    (other, self)
                };
                small.iter().filter(|t| big.contains(*t)).collect()
            }
        }
    }

    /// Set difference `self \ other`, re-packed to canonical form.
    pub fn difference(&self, other: &DenseTagSet) -> DenseTagSet {
        match (&self.repr, &other.repr) {
            (Repr::Bits { words: aw, len: _ }, Repr::Bits { words: bw, len: _ }) => {
                let words: Vec<u64> = aw
                    .iter()
                    .enumerate()
                    .map(|(i, a)| a & !bw.get(i).copied().unwrap_or(0))
                    .collect();
                DenseTagSet::from_words(words)
            }
            _ => self.iter().filter(|t| !other.contains(*t)).collect(),
        }
    }

    /// True if every member of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseTagSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Bits { words: aw, len: _ }, Repr::Bits { words: bw, len: _ }) => aw
                .iter()
                .enumerate()
                .all(|(i, a)| a & !bw.get(i).copied().unwrap_or(0) == 0),
            _ => self.iter().all(|t| other.contains(t)),
        }
    }

    /// Iterates members in increasing [`TagId`] order.
    pub fn iter(&self) -> DenseIter<'_> {
        match &self.repr {
            Repr::Inline { len, ids } => DenseIter::Inline(ids[..*len as usize].iter()),
            Repr::Bits { words, .. } => DenseIter::Bits {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Builds a canonical set from raw bitset words (used by the word-wise
    /// shrinking kernels).
    fn from_words(mut words: Vec<u64>) -> DenseTagSet {
        let pop: u32 = words.iter().map(|w| w.count_ones()).sum();
        if pop as usize <= INLINE_CAP {
            let mut ids = [0u32; INLINE_CAP];
            let mut len = 0usize;
            for (wi, w) in words.iter().enumerate() {
                let mut w = *w;
                while w != 0 {
                    ids[len] = (wi * WORD_BITS + w.trailing_zeros() as usize) as u32;
                    len += 1;
                    w &= w - 1;
                }
            }
            DenseTagSet {
                repr: Repr::Inline {
                    len: len as u8,
                    ids,
                },
            }
        } else {
            while let Some(&0) = words.last() {
                words.pop();
            }
            DenseTagSet {
                repr: Repr::Bits { words, len: pop },
            }
        }
    }
}

fn set_bit(words: &mut Vec<u64>, id: u32) {
    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
    if w >= words.len() {
        words.resize(w + 1, 0);
    }
    words[w] |= 1u64 << b;
}

/// Iterator over [`DenseTagSet`] members in increasing id order.
pub enum DenseIter<'a> {
    #[doc(hidden)]
    Inline(std::slice::Iter<'a, u32>),
    #[doc(hidden)]
    Bits {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
}

impl Iterator for DenseIter<'_> {
    type Item = TagId;

    fn next(&mut self) -> Option<TagId> {
        match self {
            DenseIter::Inline(it) => it.next().map(|id| TagId(*id)),
            DenseIter::Bits {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros() as usize;
                *current &= *current - 1;
                Some(TagId((*word_idx * WORD_BITS + bit) as u32))
            }
        }
    }
}

// Canonical form makes cross-representation equality impossible, so each
// variant compares (and hashes) its own payload directly.
impl PartialEq for DenseTagSet {
    fn eq(&self, other: &DenseTagSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Inline { len: al, ids: aids }, Repr::Inline { len: bl, ids: bids }) => {
                aids[..*al as usize] == bids[..*bl as usize]
            }
            (Repr::Bits { words: aw, len: al }, Repr::Bits { words: bw, len: bl }) => {
                al == bl && aw == bw
            }
            _ => false,
        }
    }
}

impl Eq for DenseTagSet {}

impl Hash for DenseTagSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash len + members in id order: identical for equal sets no matter
        // which arm computed them (equal sets share a representation anyway).
        state.write_usize(self.len());
        for t in self.iter() {
            state.write_u32(t.0);
        }
    }
}

impl FromIterator<TagId> for DenseTagSet {
    fn from_iter<I: IntoIterator<Item = TagId>>(iter: I) -> Self {
        let mut s = DenseTagSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl Extend<TagId> for DenseTagSet {
    fn extend<I: IntoIterator<Item = TagId>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl<'a> IntoIterator for &'a DenseTagSet {
    type Item = TagId;
    type IntoIter = DenseIter<'a>;
    fn into_iter(self) -> DenseIter<'a> {
        self.iter()
    }
}

/// A set of tags attached to a memory operation or call site.
///
/// `TagSet::All` is the conservative "may touch anything" value the front end
/// uses before analysis has run; the analyses replace it with explicit sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TagSet {
    /// May reference every memory location (unknown).
    All,
    /// May reference exactly the listed locations.
    Set(DenseTagSet),
}

impl Default for TagSet {
    fn default() -> Self {
        TagSet::empty()
    }
}

impl TagSet {
    /// The empty set.
    pub fn empty() -> Self {
        TagSet::Set(DenseTagSet::new())
    }

    /// A singleton set.
    pub fn single(tag: TagId) -> Self {
        TagSet::Set(DenseTagSet::singleton(tag))
    }

    /// True if this is the conservative universe.
    pub fn is_all(&self) -> bool {
        matches!(self, TagSet::All)
    }

    /// True if the set is known to be empty.
    pub fn is_empty(&self) -> bool {
        match self {
            TagSet::All => false,
            TagSet::Set(s) => s.is_empty(),
        }
    }

    /// Number of explicit tags, or `None` for [`TagSet::All`].
    pub fn len(&self) -> Option<usize> {
        match self {
            TagSet::All => None,
            TagSet::Set(s) => Some(s.len()),
        }
    }

    /// If the set contains exactly one tag, returns it.
    pub fn as_singleton(&self) -> Option<TagId> {
        match self {
            TagSet::Set(s) => s.as_singleton(),
            TagSet::All => None,
        }
    }

    /// The explicit members, or `None` for [`TagSet::All`].
    pub fn as_set(&self) -> Option<&DenseTagSet> {
        match self {
            TagSet::All => None,
            TagSet::Set(s) => Some(s),
        }
    }

    /// True if `tag` may be in the set.
    pub fn contains(&self, tag: TagId) -> bool {
        match self {
            TagSet::All => true,
            TagSet::Set(s) => s.contains(tag),
        }
    }

    /// Inserts a tag (no-op on [`TagSet::All`]).
    pub fn insert(&mut self, tag: TagId) {
        if let TagSet::Set(s) = self {
            s.insert(tag);
        }
    }

    /// In-place union; returns true if the set changed.
    pub fn union_with(&mut self, other: &TagSet) -> bool {
        match (&mut *self, other) {
            (TagSet::All, _) => false,
            (_, TagSet::All) => {
                *self = TagSet::All;
                true
            }
            (TagSet::Set(a), TagSet::Set(b)) => a.union_with(b),
        }
    }

    /// Intersection with an explicit universe, used to concretize
    /// [`TagSet::All`] once the analysis knows the address-taken universe.
    pub fn intersect_universe(&self, universe: &DenseTagSet) -> TagSet {
        match self {
            TagSet::All => TagSet::Set(universe.clone()),
            TagSet::Set(s) => TagSet::Set(s.intersect(universe)),
        }
    }

    /// Iterates explicit members (empty iterator for [`TagSet::All`]; callers
    /// must check [`TagSet::is_all`] first when that distinction matters).
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        match self {
            TagSet::All => None.into_iter().flatten(),
            TagSet::Set(s) => Some(s.iter()).into_iter().flatten(),
        }
    }
}

impl FromIterator<TagId> for TagSet {
    fn from_iter<I: IntoIterator<Item = TagId>>(iter: I) -> Self {
        TagSet::Set(iter.into_iter().collect())
    }
}

impl Extend<TagId> for TagSet {
    fn extend<I: IntoIterator<Item = TagId>>(&mut self, iter: I) {
        if let TagSet::Set(s) = self {
            s.extend(iter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut t = TagTable::new();
        let a = t.intern("g:a", TagKind::Global, 1);
        let b = t.intern("g:b", TagKind::Global, 4);
        assert_ne!(a, b);
        assert_eq!(t.lookup("g:a"), Some(a));
        assert_eq!(t.lookup("g:c"), None);
        assert_eq!(t.info(b).size, 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate tag name")]
    fn duplicate_names_panic() {
        let mut t = TagTable::new();
        t.intern("x", TagKind::Global, 1);
        t.intern("x", TagKind::Global, 1);
    }

    #[test]
    fn address_taken_universe_includes_heap() {
        let mut t = TagTable::new();
        let a = t.intern("a", TagKind::Global, 1);
        let h = t.intern("heap@0", TagKind::Heap { site: 0 }, 1);
        let b = t.intern("b", TagKind::Global, 1);
        t.mark_address_taken(a);
        let u = t.address_taken_set();
        assert!(u.contains(a));
        assert!(u.contains(h));
        assert!(!u.contains(b));
    }

    #[test]
    fn tagset_union_and_all() {
        let a = TagId(0);
        let b = TagId(1);
        let mut s = TagSet::single(a);
        s.union_with(&TagSet::single(b));
        assert!(s.contains(a) && s.contains(b));
        assert_eq!(s.len(), Some(2));
        s.union_with(&TagSet::All);
        assert!(s.is_all());
        assert!(s.contains(TagId(99)));
    }

    #[test]
    fn tagset_singleton() {
        assert_eq!(TagSet::single(TagId(3)).as_singleton(), Some(TagId(3)));
        assert_eq!(TagSet::empty().as_singleton(), None);
        assert_eq!(TagSet::All.as_singleton(), None);
    }

    #[test]
    fn intersect_universe_concretizes_all() {
        let u: DenseTagSet = [TagId(1), TagId(2)].into_iter().collect();
        let s = TagSet::All.intersect_universe(&u);
        assert_eq!(s.len(), Some(2));
        let t = TagSet::single(TagId(1)).intersect_universe(&u);
        assert_eq!(t.as_singleton(), Some(TagId(1)));
    }

    #[test]
    fn dense_spills_at_nine_and_reshrinks() {
        let mut s = DenseTagSet::new();
        for i in 0..INLINE_CAP as u32 {
            assert!(s.insert(TagId(i * 7)));
        }
        assert!(!s.is_spilled());
        assert!(s.insert(TagId(100)));
        assert!(s.is_spilled());
        assert_eq!(s.len(), 9);
        // Intersecting back down re-packs to the inline form.
        let small: DenseTagSet = [TagId(0), TagId(100)].into_iter().collect();
        let i = s.intersect(&small);
        assert!(!i.is_spilled());
        assert_eq!(i.len(), 2);
        assert_eq!(i, small);
    }

    #[test]
    fn dense_iter_is_sorted_both_reprs() {
        let big: DenseTagSet = (0..20).rev().map(|i| TagId(i * 13)).collect();
        assert!(big.is_spilled());
        let got: Vec<u32> = big.iter().map(|t| t.0).collect();
        let mut want: Vec<u32> = (0..20).map(|i| i * 13).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        let small: DenseTagSet = [TagId(5), TagId(1), TagId(3)].into_iter().collect();
        assert_eq!(small.iter().map(|t| t.0).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn dense_union_difference_subset() {
        let a: DenseTagSet = (0..12).map(TagId).collect();
        let b: DenseTagSet = (6..18).map(TagId).collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.len(), 18);
        let d = a.difference(&b);
        assert_eq!(
            d.iter().map(|t| t.0).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        assert!(!d.is_spilled());
        assert!(d.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
    }
}
