//! A convenience builder for constructing functions instruction by
//! instruction.
//!
//! Used by the MiniC front end, by tests, and by anyone hand-writing IL:
//!
//! ```
//! use ir::{FunctionBuilder, Module, GlobalInit, BinOp};
//!
//! let mut module = Module::new();
//! let g = module.add_global("counter", 1, GlobalInit::Zero);
//! let mut b = FunctionBuilder::new("main", 0);
//! let one = b.iconst(1);
//! let cur = b.sload(g);
//! let next = b.binary(BinOp::Add, cur, one);
//! b.sstore(next, g);
//! b.ret(None);
//! module.add_func(b.finish());
//! assert!(module.main().is_some());
//! ```

use crate::function::Function;
use crate::instr::{BinOp, BlockId, Callee, CmpOp, FuncId, Instr, Intrinsic, Reg, UnaryOp};
use crate::tag::{TagId, TagSet};

/// Incremental function construction with a notion of the "current" block.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts building a function; the current block is the entry block.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        let func = Function::new(name, arity);
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// Marks the function as returning a value.
    pub fn returns_value(&mut self) -> &mut Self {
        self.func.has_result = true;
        self
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Switches the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        self.func.new_reg()
    }

    /// True if the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.block(self.current).terminator().is_some()
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, instr: Instr) {
        self.func.block_mut(self.current).instrs.push(instr);
    }

    fn emit_def(&mut self, make: impl FnOnce(Reg) -> Instr) -> Reg {
        let dst = self.new_reg();
        self.emit(make(dst));
        dst
    }

    /// `iconst` — materialize an integer constant.
    pub fn iconst(&mut self, value: i64) -> Reg {
        self.emit_def(|dst| Instr::IConst { dst, value })
    }

    /// Materialize a float constant.
    pub fn fconst(&mut self, value: f64) -> Reg {
        self.emit_def(|dst| Instr::FConst { dst, value })
    }

    /// Materialize a function address.
    pub fn func_addr(&mut self, func: FuncId) -> Reg {
        self.emit_def(|dst| Instr::FuncAddr { dst, func })
    }

    /// Register copy.
    pub fn copy(&mut self, src: Reg) -> Reg {
        self.emit_def(|dst| Instr::Copy { dst, src })
    }

    /// Unary operation.
    pub fn unary(&mut self, op: UnaryOp, src: Reg) -> Reg {
        self.emit_def(|dst| Instr::Unary { op, dst, src })
    }

    /// Binary operation.
    pub fn binary(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        self.emit_def(|dst| Instr::Binary { op, dst, lhs, rhs })
    }

    /// Comparison.
    pub fn cmp(&mut self, op: CmpOp, lhs: Reg, rhs: Reg) -> Reg {
        self.emit_def(|dst| Instr::Cmp { op, dst, lhs, rhs })
    }

    /// `cload` — invariant unknown value.
    pub fn cload(&mut self, tag: TagId) -> Reg {
        self.emit_def(|dst| Instr::CLoad { dst, tag })
    }

    /// `sload` — scalar load.
    pub fn sload(&mut self, tag: TagId) -> Reg {
        self.emit_def(|dst| Instr::SLoad { dst, tag })
    }

    /// `sstore` — scalar store.
    pub fn sstore(&mut self, src: Reg, tag: TagId) {
        self.emit(Instr::SStore { src, tag });
    }

    /// General pointer-based load.
    pub fn load(&mut self, addr: Reg, tags: TagSet) -> Reg {
        self.emit_def(|dst| Instr::Load { dst, addr, tags })
    }

    /// General pointer-based store.
    pub fn store(&mut self, src: Reg, addr: Reg, tags: TagSet) {
        self.emit(Instr::Store { src, addr, tags });
    }

    /// Address of a tag.
    pub fn lea(&mut self, tag: TagId) -> Reg {
        self.emit_def(|dst| Instr::Lea { dst, tag })
    }

    /// Pointer arithmetic in cell units.
    pub fn ptr_add(&mut self, base: Reg, offset: Reg) -> Reg {
        self.emit_def(|dst| Instr::PtrAdd { dst, base, offset })
    }

    /// Heap allocation at allocation-site tag `site`.
    pub fn alloc(&mut self, size: Reg, site: TagId) -> Reg {
        self.emit_def(|dst| Instr::Alloc { dst, size, site })
    }

    /// Direct call with a result.
    pub fn call(&mut self, func: FuncId, args: Vec<Reg>) -> Reg {
        self.emit_def(|dst| Instr::Call {
            dst: Some(dst),
            callee: Callee::Direct(func),
            args,
            mods: TagSet::All,
            refs: TagSet::All,
        })
    }

    /// Direct call with no result.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Reg>) {
        self.emit(Instr::Call {
            dst: None,
            callee: Callee::Direct(func),
            args,
            mods: TagSet::All,
            refs: TagSet::All,
        });
    }

    /// Indirect call through a register.
    pub fn call_indirect(&mut self, target: Reg, args: Vec<Reg>, has_result: bool) -> Option<Reg> {
        let dst = if has_result {
            Some(self.new_reg())
        } else {
            None
        };
        self.emit(Instr::Call {
            dst,
            callee: Callee::Indirect(target),
            args,
            mods: TagSet::All,
            refs: TagSet::All,
        });
        dst
    }

    /// Intrinsic call; intrinsics touch no tagged memory.
    pub fn call_intrinsic(&mut self, intr: Intrinsic, args: Vec<Reg>) -> Option<Reg> {
        let dst = if intr.has_result() {
            Some(self.new_reg())
        } else {
            None
        };
        self.emit(Instr::Call {
            dst,
            callee: Callee::Intrinsic(intr),
            args,
            mods: TagSet::empty(),
            refs: TagSet::empty(),
        });
        dst
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Instr::Jump { target });
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Reg, then_bb: BlockId, else_bb: BlockId) {
        self.emit(Instr::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.emit(Instr::Ret { value });
    }

    /// Finishes construction and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Access the partially built function (for inspection in tests).
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_blocks_and_regs() {
        let mut b = FunctionBuilder::new("f", 1);
        let k = b.iconst(10);
        assert_eq!(k, Reg(1)); // r0 is the parameter
        let body = b.new_block();
        b.jump(body);
        assert!(b.is_terminated());
        b.switch_to(body);
        assert!(!b.is_terminated());
        let s = b.binary(BinOp::Add, Reg(0), k);
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.instr_count(), 4);
    }

    #[test]
    fn intrinsic_results() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.fconst(2.0);
        let r = b.call_intrinsic(Intrinsic::Sqrt, vec![x]);
        assert!(r.is_some());
        let p = b.call_intrinsic(Intrinsic::PrintInt, vec![x]);
        assert!(p.is_none());
    }
}
