//! Structural validation of IL modules.
//!
//! Every pass in the pipeline is expected to keep modules valid; the driver
//! validates after each pass in debug builds.

use crate::function::Module;
use crate::instr::{Callee, FuncId, Instr};
use std::error::Error;
use std::fmt;

/// A structural defect in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function in which the defect was found, if any.
    pub func: Option<String>,
    /// Description of the defect.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "invalid IL in @{}: {}", name, self.message),
            None => write!(f, "invalid IL: {}", self.message),
        }
    }
}

impl Error for ValidateError {}

/// Checks structural invariants of `module`.
///
/// Verified properties:
/// - every block ends with exactly one terminator, and terminators appear
///   nowhere else;
/// - branch/jump targets and φ predecessor blocks are in range;
/// - φ-nodes appear only at the start of a block and list each predecessor
///   at most once;
/// - registers are below the function's `next_reg` watermark;
/// - direct call targets exist and argument counts match the callee's arity;
/// - intrinsic calls match the intrinsic's arity and result convention;
/// - tag references are in range of the module tag table.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate(module: &Module) -> Result<(), ValidateError> {
    for (fi, func) in module.funcs.iter().enumerate() {
        let fail = |message: String| -> Result<(), ValidateError> {
            Err(ValidateError {
                func: Some(func.name.clone()),
                message,
            })
        };
        if func.blocks.is_empty() {
            return fail("function has no blocks".into());
        }
        if func.entry.index() >= func.blocks.len() {
            return fail(format!("entry {} out of range", func.entry));
        }
        for bid in func.block_ids() {
            let block = func.block(bid);
            if block.instrs.is_empty() {
                return fail(format!("{bid} is empty (no terminator)"));
            }
            let last = block.instrs.len() - 1;
            let mut seen_non_phi = false;
            for (i, instr) in block.instrs.iter().enumerate() {
                if instr.is_terminator() != (i == last) {
                    return fail(format!("{bid}[{i}]: terminator placement wrong: {instr:?}"));
                }
                match instr {
                    Instr::Phi { args, .. } => {
                        if seen_non_phi {
                            return fail(format!("{bid}[{i}]: phi after non-phi"));
                        }
                        let mut blocks: Vec<_> = args.iter().map(|(b, _)| *b).collect();
                        blocks.sort();
                        blocks.dedup();
                        if blocks.len() != args.len() {
                            return fail(format!("{bid}[{i}]: duplicate phi predecessor"));
                        }
                        for (b, _) in args {
                            if b.index() >= func.blocks.len() {
                                return fail(format!("{bid}[{i}]: phi block {b} out of range"));
                            }
                        }
                    }
                    _ => seen_non_phi = true,
                }
                if let Some(d) = instr.def() {
                    if d.0 >= func.next_reg {
                        return fail(format!("{bid}[{i}]: def {d} >= next_reg {}", func.next_reg));
                    }
                }
                let mut bad_use = None;
                instr.visit_uses(|r| {
                    if r.0 >= func.next_reg {
                        bad_use = Some(r);
                    }
                });
                if let Some(r) = bad_use {
                    return fail(format!("{bid}[{i}]: use {r} >= next_reg {}", func.next_reg));
                }
                for target in instr.successors() {
                    if target.index() >= func.blocks.len() {
                        return fail(format!("{bid}[{i}]: target {target} out of range"));
                    }
                }
                if let Instr::Call {
                    dst, callee, args, ..
                } = instr
                {
                    match callee {
                        Callee::Direct(FuncId(f)) => {
                            let Some(callee_fn) = module.funcs.get(*f as usize) else {
                                return fail(format!("{bid}[{i}]: call to missing {f}"));
                            };
                            if args.len() != callee_fn.arity {
                                return fail(format!(
                                    "{bid}[{i}]: call to @{} with {} args, arity {}",
                                    callee_fn.name,
                                    args.len(),
                                    callee_fn.arity
                                ));
                            }
                            if dst.is_some() && !callee_fn.has_result {
                                return fail(format!(
                                    "{bid}[{i}]: call result from void @{}",
                                    callee_fn.name
                                ));
                            }
                        }
                        Callee::Intrinsic(intr) => {
                            if args.len() != intr.arity() {
                                return fail(format!(
                                    "{bid}[{i}]: ${} expects {} args, got {}",
                                    intr.name(),
                                    intr.arity(),
                                    args.len()
                                ));
                            }
                            if dst.is_some() && !intr.has_result() {
                                return fail(format!(
                                    "{bid}[{i}]: result from void ${}",
                                    intr.name()
                                ));
                            }
                        }
                        Callee::Indirect(_) => {}
                    }
                }
                // Tag range checks.
                let mut bad_tag = None;
                let mut check_set = |s: &crate::tag::TagSet| {
                    for t in s.iter() {
                        if t.index() >= module.tags.len() {
                            bad_tag = Some(t);
                        }
                    }
                };
                if let Some(s) = instr.ref_tags() {
                    check_set(&s);
                }
                if let Some(s) = instr.mod_tags() {
                    check_set(&s);
                }
                if let Instr::Lea { tag, .. } | Instr::Alloc { site: tag, .. } = instr {
                    if tag.index() >= module.tags.len() {
                        bad_tag = Some(*tag);
                    }
                }
                if let Some(t) = bad_tag {
                    return fail(format!("{bid}[{i}]: tag {t} out of range"));
                }
                if let Instr::Ret { value } = instr {
                    if value.is_some() != func.has_result {
                        return fail(format!(
                            "{bid}[{i}]: ret value presence disagrees with has_result"
                        ));
                    }
                }
            }
        }
        let _ = fi;
    }
    for g in &module.globals {
        if g.tag.index() >= module.tags.len() {
            return Err(ValidateError {
                func: None,
                message: format!("global tag {} out of range", g.tag),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{Function, Module};
    use crate::instr::{BlockId, Instr, Reg};

    fn ok_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let r = b.iconst(0);
        b.ret(None);
        let _ = r;
        m.add_func(b.finish());
        m
    }

    #[test]
    fn accepts_valid() {
        assert!(validate(&ok_module()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        f.blocks[0].instrs.push(Instr::Nop);
        m.add_func(f);
        let e = validate(&m).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = ok_module();
        m.funcs[0].blocks[0].instrs.insert(
            0,
            Instr::Copy {
                dst: Reg(0),
                src: Reg(99),
            },
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut m = ok_module();
        let r = Reg(0);
        *m.funcs[0].blocks[0].instrs.last_mut().unwrap() = Instr::Branch {
            cond: r,
            then_bb: BlockId(7),
            else_bb: BlockId(0),
        };
        let e = validate(&m).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut m = ok_module();
        let callee = m.add_func(Function::new("two", 2));
        m.funcs[callee.index()].blocks[0]
            .instrs
            .push(Instr::Ret { value: None });
        m.funcs[0].blocks[0].instrs.insert(
            0,
            Instr::Call {
                dst: None,
                callee: crate::instr::Callee::Direct(callee),
                args: vec![Reg(0)],
                mods: crate::tag::TagSet::All,
                refs: crate::tag::TagSet::All,
            },
        );
        let e = validate(&m).unwrap_err();
        assert!(e.message.contains("arity"));
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut m = ok_module();
        m.funcs[0].blocks[0].instrs.insert(
            1,
            Instr::Phi {
                dst: Reg(0),
                args: vec![],
            },
        );
        let e = validate(&m).unwrap_err();
        assert!(e.message.contains("phi after non-phi"));
    }
}
