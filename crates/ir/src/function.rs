//! Functions, basic blocks, and modules.

use crate::instr::{BlockId, FuncId, Instr, Reg, Successors};
use crate::tag::{TagId, TagKind, TagTable};

/// A basic block: a straight-line instruction sequence ending in a
/// terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The instructions; when well-formed, exactly the last one is a
    /// terminator.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// The terminator, if the block is non-empty and well-formed.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut Instr> {
        self.instrs.last_mut().filter(|i| i.is_terminator())
    }

    /// Successor block ids, as an inline (non-allocating) iterator.
    pub fn successors(&self) -> Successors {
        self.terminator()
            .map(|t| t.successors())
            .unwrap_or_else(Successors::empty)
    }

    /// Inserts `instr` just before the terminator (or at the end if the
    /// block has no terminator yet).
    pub fn insert_before_terminator(&mut self, instr: Instr) {
        let at = if self.terminator().is_some() {
            self.instrs.len() - 1
        } else {
            self.instrs.len()
        };
        self.instrs.insert(at, instr);
    }

    /// Inserts a whole sequence just before the terminator with a single
    /// element shift, preserving the sequence order. Batch replacement for
    /// calling [`Block::insert_before_terminator`] in a loop (which shifts
    /// the terminator once per element — quadratic on long sequences).
    pub fn splice_before_terminator(&mut self, instrs: impl IntoIterator<Item = Instr>) {
        let at = if self.terminator().is_some() {
            self.instrs.len() - 1
        } else {
            self.instrs.len()
        };
        self.instrs.splice(at..at, instrs);
    }

    /// Index of the first non-φ instruction.
    pub fn first_non_phi(&self) -> usize {
        self.instrs
            .iter()
            .position(|i| !matches!(i, Instr::Phi { .. }))
            .unwrap_or(self.instrs.len())
    }
}

/// A function: parameters arrive in registers `r0..r(arity-1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block (conventionally `B0`).
    pub entry: BlockId,
    /// Next unused virtual register number.
    pub next_reg: u32,
    /// True if the function returns a value.
    pub has_result: bool,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Function {
            name: name.into(),
            arity,
            blocks: vec![Block::new()],
            entry: BlockId(0),
            next_reg: arity as u32,
            has_result: false,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Predecessor lists for every block (by index).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for id in self.block_ids() {
            for s in self.block(id).successors() {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Total instruction count (a cheap size metric).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The parameter registers `r0..r(arity-1)`.
    pub fn param_regs(&self) -> impl Iterator<Item = Reg> {
        (0..self.arity as u32).map(Reg)
    }

    /// Static body statistics — the counts trace deltas are computed from.
    pub fn body_stats(&self) -> BodyStats {
        let mut stats = BodyStats::default();
        for b in &self.blocks {
            stats.instrs += b.instrs.len();
            for i in &b.instrs {
                match i {
                    Instr::SLoad { .. } | Instr::CLoad { .. } | Instr::Load { .. } => {
                        stats.loads += 1
                    }
                    Instr::SStore { .. } | Instr::Store { .. } => stats.stores += 1,
                    _ => {}
                }
            }
        }
        stats
    }
}

/// Static shape counts for one function body: total instructions plus
/// the memory operations promotion exists to eliminate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BodyStats {
    /// Total instruction count.
    pub instrs: usize,
    /// Static load operations (`sload`/`cload`/`load`).
    pub loads: usize,
    /// Static store operations (`sstore`/`store`).
    pub stores: usize,
}

impl BodyStats {
    /// Per-field `self - after`, as signed counts (negative = inserted).
    pub fn delta(&self, after: &BodyStats) -> (i64, i64, i64) {
        (
            self.instrs as i64 - after.instrs as i64,
            self.loads as i64 - after.loads as i64,
            self.stores as i64 - after.stores as i64,
        )
    }
}

/// Initial contents of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// All cells zero.
    Zero,
    /// Explicit integer cell values (padded with zeros to the tag's size).
    Ints(Vec<i64>),
    /// Explicit float cell values.
    Floats(Vec<f64>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// The tag naming this global's storage.
    pub tag: TagId,
    /// Initial value.
    pub init: GlobalInit,
}

/// A whole program: functions, globals, and the tag table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// All functions; [`FuncId`] indexes this vector.
    pub funcs: Vec<Function>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// The tag interner.
    pub tags: TagTable,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name exists.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        assert!(
            self.lookup_func(&func.name).is_none(),
            "duplicate function name: {}",
            func.name
        );
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(func);
        id
    }

    /// Looks a function up by name.
    pub fn lookup_func(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Iterates function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Declares a global scalar or array and returns its tag.
    pub fn add_global(&mut self, name: &str, size: usize, init: GlobalInit) -> TagId {
        let tag = self.tags.intern(format!("g:{name}"), TagKind::Global, size);
        self.globals.push(Global { tag, init });
        tag
    }

    /// The designated entry point, if a function named `main` exists.
    pub fn main(&self) -> Option<FuncId> {
        self.lookup_func("main")
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.instr_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn function_basics() {
        let mut f = Function::new("f", 2);
        assert_eq!(f.new_reg(), Reg(2));
        assert_eq!(f.new_reg(), Reg(3));
        let b = f.new_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.param_regs().collect::<Vec<_>>(), vec![Reg(0), Reg(1)]);
    }

    #[test]
    fn predecessors() {
        let mut f = Function::new("f", 0);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let c = f.new_reg();
        f.block_mut(BlockId(0)).instrs.push(Instr::Branch {
            cond: c,
            then_bb: b1,
            else_bb: b2,
        });
        f.block_mut(b1).instrs.push(Instr::Jump { target: b2 });
        f.block_mut(b2).instrs.push(Instr::Ret { value: None });
        let preds = f.predecessors();
        assert_eq!(preds[b2.index()], vec![BlockId(0), b1]);
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn insert_before_terminator() {
        let mut b = Block::new();
        b.instrs.push(Instr::Ret { value: None });
        b.insert_before_terminator(Instr::Nop);
        assert!(matches!(b.instrs[0], Instr::Nop));
        assert!(b.terminator().is_some());
    }

    #[test]
    fn splice_before_terminator_keeps_order() {
        let mut b = Block::new();
        b.instrs.push(Instr::IConst {
            dst: Reg(0),
            value: 7,
        });
        b.instrs.push(Instr::Ret { value: None });
        b.splice_before_terminator([
            Instr::Copy {
                dst: Reg(1),
                src: Reg(0),
            },
            Instr::Copy {
                dst: Reg(2),
                src: Reg(1),
            },
        ]);
        assert!(matches!(b.instrs[1], Instr::Copy { dst: Reg(1), .. }));
        assert!(matches!(b.instrs[2], Instr::Copy { dst: Reg(2), .. }));
        assert!(b.terminator().is_some());

        // No terminator: appends at the end.
        let mut open = Block::new();
        open.splice_before_terminator([Instr::Nop]);
        assert_eq!(open.instrs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_names_panic() {
        let mut m = Module::new();
        m.add_func(Function::new("f", 0));
        m.add_func(Function::new("f", 0));
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let f = m.add_func(Function::new("main", 0));
        assert_eq!(m.main(), Some(f));
        assert_eq!(m.lookup_func("nope"), None);
        let g = m.add_global("x", 1, GlobalInit::Zero);
        assert_eq!(m.tags.info(g).name, "g:x");
    }
}
