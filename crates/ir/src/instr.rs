//! The instruction set of the intermediate language.
//!
//! The IL is ILOC-like: an unbounded set of virtual registers, explicit
//! memory operations carrying tag sets, and the paper's Table-1 hierarchy of
//! memory opcodes encoding increasingly specific knowledge:
//!
//! | op       | meaning                                             |
//! |----------|-----------------------------------------------------|
//! | `iconst` | *iLoad* — materialize a known constant              |
//! | `cload`  | *cLoad* — load an invariant but unknown value       |
//! | `sload`/`sstore` | scalar load/store of a single named location |
//! | `load`/`store`   | general pointer-based load/store            |

use crate::tag::{TagId, TagSet};
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A basic-block id, local to one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A function id, local to one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Two-operand arithmetic and logical operators.
///
/// Integer and floating-point variants share opcodes; operand kinds are
/// dynamically typed in the VM and statically checked by the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the standard operator mnemonics
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// True for operators that are commutative over the integers.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

/// Comparison operators; results are integer 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the standard comparison mnemonics
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "cmpeq",
            CmpOp::Ne => "cmpne",
            CmpOp::Lt => "cmplt",
            CmpOp::Le => "cmple",
            CmpOp::Gt => "cmpgt",
            CmpOp::Ge => "cmpge",
        }
    }

    /// The comparison with swapped operands (`a op b` == `b op.swap() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` == `a op.negated() b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Single-operand operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 -> 1, nonzero -> 0).
    Not,
    /// Integer to floating point.
    IntToFloat,
    /// Floating point to integer (truncating).
    FloatToInt,
}

impl UnaryOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::IntToFloat => "i2f",
            UnaryOp::FloatToInt => "f2i",
        }
    }
}

/// Built-in routines the VM implements directly.
///
/// Intrinsics have no memory side effects except the `print_*` family, which
/// only writes the VM output stream (no tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Print an integer followed by a newline.
    PrintInt,
    /// Print a float followed by a newline.
    PrintFloat,
    /// `sqrt(f64) -> f64`.
    Sqrt,
    /// `sin(f64) -> f64`.
    Sin,
    /// `cos(f64) -> f64`.
    Cos,
    /// `pow(f64, f64) -> f64`.
    Pow,
    /// `abs(i64) -> i64`.
    AbsInt,
    /// `fabs(f64) -> f64`.
    AbsFloat,
    /// `exit(i64) -> !` — stop the VM with a status code.
    Exit,
}

impl Intrinsic {
    /// Source-level name (used by the front end and the printer).
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::PrintInt => "print_int",
            Intrinsic::PrintFloat => "print_float",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Pow => "pow",
            Intrinsic::AbsInt => "abs",
            Intrinsic::AbsFloat => "fabs",
            Intrinsic::Exit => "exit",
        }
    }

    /// Resolves a source-level name to an intrinsic.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "print_int" => Intrinsic::PrintInt,
            "print_float" => Intrinsic::PrintFloat,
            "sqrt" => Intrinsic::Sqrt,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "pow" => Intrinsic::Pow,
            "abs" => Intrinsic::AbsInt,
            "fabs" => Intrinsic::AbsFloat,
            "exit" => Intrinsic::Exit,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow => 2,
            _ => 1,
        }
    }

    /// True if the intrinsic produces a value.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Intrinsic::PrintInt | Intrinsic::PrintFloat | Intrinsic::Exit
        )
    }
}

/// The target of a call.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A direct call to a module function.
    Direct(FuncId),
    /// An indirect call through a register holding a function address.
    Indirect(Reg),
    /// A VM built-in.
    Intrinsic(Intrinsic),
}

/// One IL instruction.
///
/// The last instruction of every block must be a terminator
/// ([`Instr::is_terminator`]); terminators may not appear elsewhere.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operand fields follow one uniform naming scheme
pub enum Instr {
    /// *iLoad*: materialize a known integer constant.
    IConst { dst: Reg, value: i64 },
    /// Materialize a known floating-point constant.
    FConst { dst: Reg, value: f64 },
    /// Materialize the address of a function (for function pointers).
    FuncAddr { dst: Reg, func: FuncId },
    /// Register-to-register copy.
    Copy { dst: Reg, src: Reg },
    /// Unary arithmetic.
    Unary { op: UnaryOp, dst: Reg, src: Reg },
    /// Binary arithmetic.
    Binary {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Comparison producing integer 0/1.
    Cmp {
        op: CmpOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },

    /// *cLoad*: load a value known to be invariant but unknown at compile
    /// time, from the single location `tag`.
    CLoad { dst: Reg, tag: TagId },
    /// Scalar load: the operation is known to read exactly `tag` (an
    /// *explicit* reference in the paper's terms).
    SLoad { dst: Reg, tag: TagId },
    /// Scalar store to exactly `tag`.
    SStore { src: Reg, tag: TagId },
    /// General pointer-based load through `addr`; may read any tag in
    /// `tags`. Ambiguous when `tags` is not a singleton.
    Load { dst: Reg, addr: Reg, tags: TagSet },
    /// General pointer-based store through `addr`.
    Store { src: Reg, addr: Reg, tags: TagSet },

    /// Materialize the address of `tag` (cell offset 0).
    Lea { dst: Reg, tag: TagId },
    /// Pointer arithmetic: `dst = base + offset` in cell units.
    PtrAdd { dst: Reg, base: Reg, offset: Reg },
    /// Heap allocation of `size` cells; all objects allocated here share the
    /// allocation-site tag `site`.
    Alloc { dst: Reg, size: Reg, site: TagId },

    /// Call. `mods`/`refs` summarize the callee's side effects on memory,
    /// exactly as the paper attaches MOD/REF tag lists to call sites.
    Call {
        dst: Option<Reg>,
        callee: Callee,
        args: Vec<Reg>,
        mods: TagSet,
        refs: TagSet,
    },

    /// SSA φ-node; `args` pair predecessor blocks with incoming registers.
    Phi { dst: Reg, args: Vec<(BlockId, Reg)> },

    /// Unconditional jump (terminator).
    Jump { target: BlockId },
    /// Conditional branch on `cond != 0` (terminator).
    Branch {
        cond: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return (terminator).
    Ret { value: Option<Reg> },

    /// No operation (used transiently by rewrites; removed by `clean`).
    Nop,
}

impl Instr {
    /// True if the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. } | Instr::Branch { .. } | Instr::Ret { .. }
        )
    }

    /// True for the three load opcodes (`cload`, `sload`, `load`).
    ///
    /// Note that `iconst` (*iLoad*) is **not** a memory load: it materializes
    /// a known constant without touching memory, matching the paper's
    /// hierarchy where `iLoad` needs no tag.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::CLoad { .. } | Instr::SLoad { .. } | Instr::Load { .. }
        )
    }

    /// True for the two store opcodes.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::SStore { .. } | Instr::Store { .. })
    }

    /// True for any memory operation (loads, stores, allocation).
    pub fn is_memory(&self) -> bool {
        self.is_load() || self.is_store() || matches!(self, Instr::Alloc { .. })
    }

    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::IConst { dst, .. }
            | Instr::FConst { dst, .. }
            | Instr::FuncAddr { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::CLoad { dst, .. }
            | Instr::SLoad { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Lea { dst, .. }
            | Instr::PtrAdd { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Phi { dst, .. } => Some(dst),
            Instr::Call { dst, .. } => dst,
            _ => None,
        }
    }

    /// A mutable reference to the defined register, if any.
    pub fn def_mut(&mut self) -> Option<&mut Reg> {
        match self {
            Instr::IConst { dst, .. }
            | Instr::FConst { dst, .. }
            | Instr::FuncAddr { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::CLoad { dst, .. }
            | Instr::SLoad { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Lea { dst, .. }
            | Instr::PtrAdd { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Phi { dst, .. } => Some(dst),
            Instr::Call { dst, .. } => dst.as_mut(),
            _ => None,
        }
    }

    /// Invokes `f` on every register used (read) by this instruction.
    pub fn visit_uses(&self, mut f: impl FnMut(Reg)) {
        match self {
            Instr::Copy { src, .. } | Instr::Unary { src, .. } => f(*src),
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::SStore { src, .. } => f(*src),
            Instr::Load { addr, .. } => f(*addr),
            Instr::Store { src, addr, .. } => {
                f(*src);
                f(*addr);
            }
            Instr::PtrAdd { base, offset, .. } => {
                f(*base);
                f(*offset);
            }
            Instr::Alloc { size, .. } => f(*size),
            Instr::Call { callee, args, .. } => {
                if let Callee::Indirect(r) = callee {
                    f(*r);
                }
                for a in args {
                    f(*a);
                }
            }
            Instr::Phi { args, .. } => {
                for (_, r) in args {
                    f(*r);
                }
            }
            Instr::Branch { cond, .. } => f(*cond),
            Instr::Ret { value: Some(r) } => f(*r),
            _ => {}
        }
    }

    /// Invokes `f` on a mutable reference to every used register.
    pub fn visit_uses_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        match self {
            Instr::Copy { src, .. } | Instr::Unary { src, .. } => f(src),
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Instr::SStore { src, .. } => f(src),
            Instr::Load { addr, .. } => f(addr),
            Instr::Store { src, addr, .. } => {
                f(src);
                f(addr);
            }
            Instr::PtrAdd { base, offset, .. } => {
                f(base);
                f(offset);
            }
            Instr::Alloc { size, .. } => f(size),
            Instr::Call { callee, args, .. } => {
                if let Callee::Indirect(r) = callee {
                    f(r);
                }
                for a in args {
                    f(a);
                }
            }
            Instr::Phi { args, .. } => {
                for (_, r) in args {
                    f(r);
                }
            }
            Instr::Branch { cond, .. } => f(cond),
            Instr::Ret { value: Some(r) } => f(r),
            _ => {}
        }
    }

    /// Collects the used registers into a vector (convenience for tests and
    /// analyses that want an owned list).
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.visit_uses(|r| v.push(r));
        v
    }

    /// Successor blocks if this is a terminator.
    ///
    /// Returns an inline iterator (no heap allocation); a two-way branch
    /// with identical arms yields its target once.
    pub fn successors(&self) -> Successors {
        match self {
            Instr::Jump { target } => Successors {
                first: Some(*target),
                second: None,
            },
            Instr::Branch {
                then_bb, else_bb, ..
            } => Successors {
                first: Some(*then_bb),
                second: if then_bb == else_bb {
                    None
                } else {
                    Some(*else_bb)
                },
            },
            _ => Successors::empty(),
        }
    }

    /// Rewrites block references in terminators and φ-nodes via `f`.
    pub fn retarget_blocks(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Instr::Jump { target } => *target = f(*target),
            Instr::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Instr::Phi { args, .. } => {
                for (b, _) in args {
                    *b = f(*b);
                }
            }
            _ => {}
        }
    }

    /// The tag set this instruction may *reference* (read), if it is a
    /// memory read or a call.
    pub fn ref_tags(&self) -> Option<TagSet> {
        match self {
            Instr::CLoad { tag, .. } | Instr::SLoad { tag, .. } => Some(TagSet::single(*tag)),
            Instr::Load { tags, .. } => Some(tags.clone()),
            Instr::Call { refs, .. } => Some(refs.clone()),
            _ => None,
        }
    }

    /// The tag set this instruction may *modify* (write), if it is a memory
    /// write or a call.
    pub fn mod_tags(&self) -> Option<TagSet> {
        match self {
            Instr::SStore { tag, .. } => Some(TagSet::single(*tag)),
            Instr::Store { tags, .. } => Some(tags.clone()),
            Instr::Call { mods, .. } => Some(mods.clone()),
            _ => None,
        }
    }

    /// True if the instruction has side effects beyond defining its result
    /// (stores, calls, allocation, control flow).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Instr::SStore { .. }
                | Instr::Store { .. }
                | Instr::Call { .. }
                | Instr::Alloc { .. }
                | Instr::Jump { .. }
                | Instr::Branch { .. }
                | Instr::Ret { .. }
        )
    }
}

/// Inline iterator over a terminator's successor blocks (zero, one, or two
/// of them) — the non-allocating replacement for the old `Vec<BlockId>`
/// return of [`Instr::successors`]. A conditional branch whose arms agree
/// yields its target once, preserving the historical dedup behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successors {
    first: Option<BlockId>,
    second: Option<BlockId>,
}

impl Successors {
    /// An iterator with no successors (non-terminators, `ret`).
    pub fn empty() -> Self {
        Successors {
            first: None,
            second: None,
        }
    }
}

impl Iterator for Successors {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        self.first.take().or_else(|| self.second.take())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Successors {
    fn len(&self) -> usize {
        self.first.is_some() as usize + self.second.is_some() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_hierarchy() {
        // Table 1: iconst is not a load; cload/sload/load are; sstore/store
        // are stores.
        let r = Reg(0);
        let t = TagId(0);
        assert!(!Instr::IConst { dst: r, value: 1 }.is_load());
        assert!(Instr::CLoad { dst: r, tag: t }.is_load());
        assert!(Instr::SLoad { dst: r, tag: t }.is_load());
        assert!(Instr::Load {
            dst: r,
            addr: r,
            tags: TagSet::All
        }
        .is_load());
        assert!(Instr::SStore { src: r, tag: t }.is_store());
        assert!(Instr::Store {
            src: r,
            addr: r,
            tags: TagSet::All
        }
        .is_store());
        assert!(!Instr::Copy { dst: r, src: r }.is_memory());
    }

    #[test]
    fn def_and_uses() {
        let i = Instr::Binary {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0), Reg(1)]);

        let s = Instr::Store {
            src: Reg(3),
            addr: Reg(4),
            tags: TagSet::All,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg(3), Reg(4)]);
    }

    #[test]
    fn successors_dedup_same_target() {
        let b = Instr::Branch {
            cond: Reg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(b.successors().collect::<Vec<_>>(), vec![BlockId(1)]);
        let b2 = Instr::Branch {
            cond: Reg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b2.successors().len(), 2);
        assert_eq!(b2.successors().size_hint(), (2, Some(2)));
        assert_eq!(Instr::Ret { value: None }.successors().count(), 0);
    }

    #[test]
    fn cmp_swap_negate() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn ref_and_mod_tags() {
        let t = TagId(7);
        let ld = Instr::SLoad {
            dst: Reg(0),
            tag: t,
        };
        assert_eq!(ld.ref_tags(), Some(TagSet::single(t)));
        assert_eq!(ld.mod_tags(), None);
        let st = Instr::SStore {
            src: Reg(0),
            tag: t,
        };
        assert_eq!(st.mod_tags(), Some(TagSet::single(t)));
        let call = Instr::Call {
            dst: None,
            callee: Callee::Intrinsic(Intrinsic::PrintInt),
            args: vec![Reg(0)],
            mods: TagSet::empty(),
            refs: TagSet::All,
        };
        assert_eq!(call.mod_tags(), Some(TagSet::empty()));
        assert_eq!(call.ref_tags(), Some(TagSet::All));
    }

    #[test]
    fn intrinsic_roundtrip() {
        for i in [
            Intrinsic::PrintInt,
            Intrinsic::PrintFloat,
            Intrinsic::Sqrt,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Pow,
            Intrinsic::AbsInt,
            Intrinsic::AbsFloat,
            Intrinsic::Exit,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("bogus"), None);
    }
}
