//! Property test: the textual IL round-trips through print → parse for
//! arbitrary generated modules.
//!
//! Randomness comes from an in-tree xorshift64* generator so the test is
//! fully deterministic and needs no external crates (the build must work
//! offline).

use ir::{BinOp, CmpOp, FunctionBuilder, GlobalInit, Module, TagKind, TagSet, UnaryOp};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo) as u64)) as i64
    }
}

fn build_module(n_tags: usize, instrs: &[(usize, usize, usize, i64)], blocks: usize) -> Module {
    let mut m = Module::new();
    let mut tags = Vec::new();
    for i in 0..n_tags {
        let t = m.add_global(
            &format!("v{i}"),
            1 + i % 3,
            GlobalInit::Ints(vec![i as i64]),
        );
        tags.push(t);
    }
    if tags.is_empty() {
        tags.push(m.add_global("only", 1, GlobalInit::Zero));
    }
    let mut b = FunctionBuilder::new("main", 0);
    let mut regs = vec![b.iconst(1)];
    let block_ids: Vec<_> = (1..blocks).map(|_| b.new_block()).collect();
    for &(op, a, t, imm) in instrs {
        let ra = regs[a % regs.len()];
        let tag = tags[t % tags.len()];
        let r = match op % 10 {
            0 => b.iconst(imm),
            1 => b.fconst(imm as f64 * 0.5),
            2 => b.binary(BinOp::Add, ra, ra),
            3 => b.cmp(CmpOp::Le, ra, ra),
            4 => b.unary(UnaryOp::Neg, ra),
            5 => b.sload(tag),
            6 => {
                b.sstore(ra, tag);
                ra
            }
            7 => b.lea(tag),
            8 => {
                let addr = b.lea(tag);
                let mut set = TagSet::single(tag);
                if imm % 2 == 0 {
                    set = TagSet::All;
                }
                b.load(addr, set)
            }
            _ => b.copy(ra),
        };
        regs.push(r);
    }
    // Wire the blocks into a chain so every one has a terminator.
    for (i, &blk) in block_ids.iter().enumerate() {
        if i == 0 {
            b.jump(blk);
        }
        b.switch_to(blk);
        if i + 1 < block_ids.len() {
            let next = block_ids[i + 1];
            b.branch(regs[0], next, next);
        }
    }
    b.ret(None);
    if block_ids.is_empty() {
        // single-block function: terminator added above went to B0
    }
    m.add_func(b.finish());
    m
}

#[test]
fn print_parse_roundtrip() {
    let mut rng = Rng::new(0xC00_93A5);
    for case in 0..256 {
        let n_tags = rng.below(5);
        let n_instrs = rng.below(25);
        let instrs: Vec<(usize, usize, usize, i64)> = (0..n_instrs)
            .map(|_| {
                (
                    rng.below(10),
                    rng.below(8),
                    rng.below(5),
                    rng.range_i64(-100, 100),
                )
            })
            .collect();
        let blocks = 1 + rng.below(4);
        let m = build_module(n_tags, &instrs, blocks);
        if ir::validate(&m).is_err() {
            continue;
        }
        let text = m.to_string();
        let reparsed = ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(
            m, reparsed,
            "case {case}: round-trip changed the module:\n{text}"
        );
        // And printing again is a fixpoint.
        assert_eq!(text, reparsed.to_string(), "case {case}");
    }
}

#[test]
fn tag_kinds_roundtrip() {
    let mut m = Module::new();
    m.tags.intern("a", TagKind::Global, 4);
    m.tags.intern("b", TagKind::Local { owner: 0 }, 1);
    m.tags.intern("c", TagKind::Param { owner: 0 }, 1);
    m.tags.intern("d", TagKind::Heap { site: 3 }, 1);
    let s = m.tags.intern("e", TagKind::Spill { owner: 0 }, 1);
    m.tags.mark_address_taken(s);
    let mut b = FunctionBuilder::new("main", 0);
    b.ret(None);
    m.add_func(b.finish());
    let text = m.to_string();
    let m2 = ir::parse_module(&text).expect("parse");
    assert_eq!(m, m2);
}

#[test]
fn call_forms_roundtrip() {
    let src = r#"
tag "g" global size=1
global "g" zero
func @callee(2) result {
B0:
  r2 = add r0, r1
  ret r2
}
func @main(0) {
B0:
  r0 = iconst 1
  r1 = call @callee(r0, r0) mods{} refs{"g"}
  r2 = funcaddr @callee
  r3 = call *r2(r0, r1) mods{*} refs{*}
  r4 = call $abs(r3) mods{} refs{}
  call $print_int(r4) mods{} refs{}
  ret
}
"#;
    let m = ir::parse_module(src).expect("parse");
    let m2 = ir::parse_module(&m.to_string()).expect("reparse");
    assert_eq!(m, m2);
    // Phis too.
    let phi_src = r#"
func @main(0) result {
B0:
  r0 = iconst 0
  branch r0, B1, B2
B1:
  r1 = iconst 1
  jump B3
B2:
  r2 = iconst 2
  jump B3
B3:
  r3 = phi [B1: r1, B2: r2]
  ret r3
}
"#;
    let m = ir::parse_module(phi_src).expect("parse");
    assert_eq!(m, ir::parse_module(&m.to_string()).expect("reparse"));
}
