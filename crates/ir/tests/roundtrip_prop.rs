//! Property test: the textual IL round-trips through print → parse for
//! arbitrary generated modules.

use ir::{
    BinOp, CmpOp, FunctionBuilder, GlobalInit, Instr, Module, TagKind, TagSet, UnaryOp,
};
use proptest::prelude::*;

fn build_module(
    n_tags: usize,
    instrs: &[(usize, usize, usize, i64)],
    blocks: usize,
) -> Module {
    let mut m = Module::new();
    let mut tags = Vec::new();
    for i in 0..n_tags {
        let t = m.add_global(&format!("v{i}"), 1 + i % 3, GlobalInit::Ints(vec![i as i64]));
        tags.push(t);
    }
    if tags.is_empty() {
        tags.push(m.add_global("only", 1, GlobalInit::Zero));
    }
    let mut b = FunctionBuilder::new("main", 0);
    let mut regs = vec![b.iconst(1)];
    let block_ids: Vec<_> = (1..blocks).map(|_| b.new_block()).collect();
    for &(op, a, t, imm) in instrs {
        let ra = regs[a % regs.len()];
        let tag = tags[t % tags.len()];
        let r = match op % 10 {
            0 => b.iconst(imm),
            1 => b.fconst(imm as f64 * 0.5),
            2 => b.binary(BinOp::Add, ra, ra),
            3 => b.cmp(CmpOp::Le, ra, ra),
            4 => b.unary(UnaryOp::Neg, ra),
            5 => b.sload(tag),
            6 => {
                b.sstore(ra, tag);
                ra
            }
            7 => b.lea(tag),
            8 => {
                let addr = b.lea(tag);
                let mut set = TagSet::single(tag);
                if imm % 2 == 0 {
                    set = TagSet::All;
                }
                b.load(addr, set)
            }
            _ => b.copy(ra),
        };
        regs.push(r);
    }
    // Wire the blocks into a chain so every one has a terminator.
    for (i, &blk) in block_ids.iter().enumerate() {
        if i == 0 {
            b.jump(blk);
        }
        b.switch_to(blk);
        if i + 1 < block_ids.len() {
            let next = block_ids[i + 1];
            b.branch(regs[0], next, next);
        }
    }
    b.ret(None);
    if block_ids.is_empty() {
        // single-block function: terminator added above went to B0
    }
    m.add_func(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(
        n_tags in 0usize..5,
        instrs in proptest::collection::vec(
            (0usize..10, 0usize..8, 0usize..5, -100i64..100),
            0..25,
        ),
        blocks in 1usize..5,
    ) {
        let m = build_module(n_tags, &instrs, blocks);
        prop_assume!(ir::validate(&m).is_ok());
        let text = m.to_string();
        let reparsed = ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&m, &reparsed, "round-trip changed the module:\n{}", text);
        // And printing again is a fixpoint.
        prop_assert_eq!(text, reparsed.to_string());
    }
}

#[test]
fn tag_kinds_roundtrip() {
    let mut m = Module::new();
    m.tags.intern("a", TagKind::Global, 4);
    m.tags.intern("b", TagKind::Local { owner: 0 }, 1);
    m.tags.intern("c", TagKind::Param { owner: 0 }, 1);
    m.tags.intern("d", TagKind::Heap { site: 3 }, 1);
    let s = m.tags.intern("e", TagKind::Spill { owner: 0 }, 1);
    m.tags.mark_address_taken(s);
    let mut b = FunctionBuilder::new("main", 0);
    b.ret(None);
    m.add_func(b.finish());
    let text = m.to_string();
    let m2 = ir::parse_module(&text).expect("parse");
    assert_eq!(m, m2);
}

#[test]
fn call_forms_roundtrip() {
    let src = r#"
tag "g" global size=1
global "g" zero
func @callee(2) result {
B0:
  r2 = add r0, r1
  ret r2
}
func @main(0) {
B0:
  r0 = iconst 1
  r1 = call @callee(r0, r0) mods{} refs{"g"}
  r2 = funcaddr @callee
  r3 = call *r2(r0, r1) mods{*} refs{*}
  r4 = call $abs(r3) mods{} refs{}
  call $print_int(r4) mods{} refs{}
  ret
}
"#;
    let m = ir::parse_module(src).expect("parse");
    let m2 = ir::parse_module(&m.to_string()).expect("reparse");
    assert_eq!(m, m2);
    // Phis too.
    let phi_src = r#"
func @main(0) result {
B0:
  r0 = iconst 0
  branch r0, B1, B2
B1:
  r1 = iconst 1
  jump B3
B2:
  r2 = iconst 2
  jump B3
B3:
  r3 = phi [B1: r1, B2: r2]
  ret r3
}
"#;
    let m = ir::parse_module(phi_src).expect("parse");
    assert_eq!(m, ir::parse_module(&m.to_string()).expect("reparse"));
}
