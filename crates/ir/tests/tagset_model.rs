//! Differential tests for the hybrid tag-set kernels.
//!
//! [`ir::DenseTagSet`] (sorted inline array up to [`ir::INLINE_CAP`],
//! spilling to a dense word bitset) is checked operation-by-operation
//! against the obvious `BTreeSet<u32>` reference model: exhaustively on
//! small universes (every pair of subsets straddles nothing), and with a
//! deterministic xorshift64* generator on large, sparse id spaces that
//! force both representations and the transitions between them.

use ir::{DenseTagSet, TagId, TagSet, INLINE_CAP};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

type Model = BTreeSet<u32>;

fn dense(model: &Model) -> DenseTagSet {
    model.iter().map(|&i| TagId(i)).collect()
}

fn assert_matches(set: &DenseTagSet, model: &Model, ctx: &str) {
    assert_eq!(set.len(), model.len(), "{ctx}: len");
    assert_eq!(set.is_empty(), model.is_empty(), "{ctx}: is_empty");
    let got: Vec<u32> = set.iter().map(|t| t.0).collect();
    let want: Vec<u32> = model.iter().copied().collect();
    assert_eq!(got, want, "{ctx}: iteration order must be sorted id order");
    for &i in model {
        assert_eq!(
            set.contains(TagId(i)),
            model.contains(&i),
            "{ctx}: contains({i})"
        );
    }
    match model.len() {
        1 => assert_eq!(
            set.as_singleton(),
            Some(TagId(*model.iter().next().unwrap())),
            "{ctx}"
        ),
        _ => assert_eq!(
            set.as_singleton(),
            None,
            "{ctx}: as_singleton on len {}",
            model.len()
        ),
    }
    assert_eq!(
        set.is_spilled(),
        model.len() > INLINE_CAP,
        "{ctx}: representation invariant"
    );
}

fn hash_of(set: &DenseTagSet) -> u64 {
    let mut h = DefaultHasher::new();
    set.hash(&mut h);
    h.finish()
}

/// Every pair of subsets of a small universe: all binary kernels agree
/// with the model, and Eq/Hash respect set semantics.
#[test]
fn exhaustive_small_universe() {
    let ids: Vec<u32> = vec![0, 1, 2, 3, 4];
    let n = ids.len();
    for mask_a in 0u32..(1 << n) {
        let model_a: Model = (0..n)
            .filter(|&i| mask_a & (1 << i) != 0)
            .map(|i| ids[i])
            .collect();
        let a = dense(&model_a);
        assert_matches(&a, &model_a, &format!("a={mask_a:05b}"));
        for mask_b in 0u32..(1 << n) {
            let model_b: Model = (0..n)
                .filter(|&i| mask_b & (1 << i) != 0)
                .map(|i| ids[i])
                .collect();
            let b = dense(&model_b);
            let ctx = format!("a={mask_a:05b} b={mask_b:05b}");

            let mut union = a.clone();
            let grew = union.union_with(&b);
            let model_union: Model = model_a.union(&model_b).copied().collect();
            assert_matches(&union, &model_union, &format!("{ctx} union"));
            assert_eq!(
                grew,
                model_union.len() > model_a.len(),
                "{ctx}: union growth flag"
            );

            let model_inter: Model = model_a.intersection(&model_b).copied().collect();
            assert_matches(&a.intersect(&b), &model_inter, &format!("{ctx} intersect"));

            let model_diff: Model = model_a.difference(&model_b).copied().collect();
            assert_matches(&a.difference(&b), &model_diff, &format!("{ctx} difference"));

            assert_eq!(
                a.is_subset(&b),
                model_a.is_subset(&model_b),
                "{ctx}: is_subset"
            );
            assert_eq!(a == b, model_a == model_b, "{ctx}: eq");
            if model_a == model_b {
                assert_eq!(
                    hash_of(&a),
                    hash_of(&b),
                    "{ctx}: equal sets must hash equal"
                );
            }
        }
    }
}

/// Inserting one id at a time across the inline/bitset boundary keeps the
/// set canonical in both directions (difference can shrink it back).
#[test]
fn boundary_crossings_stay_canonical() {
    // Sparse ids so the bitset needs several words.
    let ids: Vec<u32> = (0..INLINE_CAP as u32 + 4).map(|i| i * 97 + 5).collect();
    let mut set = DenseTagSet::new();
    let mut model = Model::new();
    for &i in &ids {
        assert!(set.insert(TagId(i)), "fresh insert returns true");
        assert!(!set.insert(TagId(i)), "duplicate insert returns false");
        model.insert(i);
        assert_matches(&set, &model, &format!("growing through {i}"));
    }
    // Drop back below the cap one id at a time via difference.
    for &i in ids.iter().rev() {
        let single = DenseTagSet::singleton(TagId(i));
        set = set.difference(&single);
        model.remove(&i);
        assert_matches(&set, &model, &format!("shrinking past {i}"));
        // An equal set built fresh (never spilled) must compare and hash
        // equal to the shrunk one — i.e. shrinking re-canonicalizes.
        let fresh = dense(&model);
        assert_eq!(set, fresh, "shrunk set equals freshly built set");
        assert_eq!(hash_of(&set), hash_of(&fresh));
    }
}

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_model(rng: &mut Rng, max_id: usize, max_len: usize) -> Model {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| rng.below(max_id) as u32).collect()
}

/// Randomized differential run over large, sparse id spaces: mixed sizes
/// force Inline×Inline, Inline×Bits, Bits×Inline, and Bits×Bits paths of
/// every kernel.
#[test]
fn randomized_large_sets_match_model() {
    let mut rng = Rng::new(0x7A65_7453);
    for case in 0..2000 {
        // Alternate small and large bounds so representation pairs mix.
        let (max_id, max_len) = match case % 4 {
            0 => (12, 6),
            1 => (2000, 40),
            2 => (300, INLINE_CAP + 1),
            _ => (100_000, 24),
        };
        let model_a = random_model(&mut rng, max_id, max_len);
        let model_b = random_model(&mut rng, max_id, max_len);
        let a = dense(&model_a);
        let b = dense(&model_b);
        let ctx = format!("case {case}");
        assert_matches(&a, &model_a, &ctx);

        let mut union = a.clone();
        union.union_with(&b);
        assert_matches(&union, &model_a.union(&model_b).copied().collect(), &ctx);

        let inter = a.intersect(&b);
        assert_matches(
            &inter,
            &model_a.intersection(&model_b).copied().collect(),
            &ctx,
        );

        let diff = a.difference(&b);
        assert_matches(
            &diff,
            &model_a.difference(&model_b).copied().collect(),
            &ctx,
        );

        assert_eq!(
            a.is_subset(&b),
            model_a.is_subset(&model_b),
            "{ctx}: is_subset"
        );
        assert!(
            inter.is_subset(&a) && inter.is_subset(&b),
            "{ctx}: intersect ⊆ both"
        );
        assert!(diff.is_subset(&a), "{ctx}: difference ⊆ lhs");
        assert!(
            a.is_subset(&union) && b.is_subset(&union),
            "{ctx}: both ⊆ union"
        );

        // union = intersect ∪ (a − b) ∪ (b − a), cross-checked through Eq.
        let mut rebuilt = inter.clone();
        rebuilt.union_with(&diff);
        rebuilt.union_with(&b.difference(&a));
        assert_eq!(rebuilt, union, "{ctx}: inclusion-exclusion identity");
    }
}

/// `TagSet::All` is the ⊤ element: unions saturate to it and only
/// `intersect_universe` brings it back down.
#[test]
fn tagset_all_edge_cases() {
    let universe: DenseTagSet = (0..20u32).map(TagId).collect();
    let some: TagSet = [TagId(3), TagId(15)].into_iter().collect();

    // Set ∪ All saturates; the flag reports a change exactly once.
    let mut s = some.clone();
    assert!(s.union_with(&TagSet::All), "widening to ⊤ is a change");
    assert!(s.is_all());
    assert!(!s.union_with(&TagSet::All), "⊤ ∪ ⊤ is no change");
    assert!(!s.union_with(&some), "⊤ absorbs everything");

    // All ∩ universe = universe (as a concrete set).
    let lowered = TagSet::All.intersect_universe(&universe);
    assert!(!lowered.is_all());
    assert_eq!(lowered.as_set(), Some(&universe));
    assert_eq!(lowered.len(), Some(20));

    // Set ∩ universe filters against the universe.
    let mut with_stray = some.clone();
    with_stray.insert(TagId(99));
    let filtered = with_stray.intersect_universe(&universe);
    assert_eq!(
        filtered.as_set(),
        Some(&[TagId(3), TagId(15)].into_iter().collect())
    );

    // All: contains everything, no singleton, unknown length.
    assert!(TagSet::All.contains(TagId(1_000_000)));
    assert_eq!(TagSet::All.as_singleton(), None);
    assert_eq!(TagSet::All.len(), None);
    assert_eq!(TagSet::All.as_set(), None);

    // An empty universe collapses ⊤ to the empty set.
    let none = TagSet::All.intersect_universe(&DenseTagSet::new());
    assert_eq!(none.len(), Some(0));
    assert!(none.is_empty());
}
