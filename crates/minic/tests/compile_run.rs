//! End-to-end tests: MiniC source → IL → interpreted execution.

use vm::{Vm, VmOptions};

fn run(src: &str) -> vm::Outcome {
    let module = minic::compile(src).expect("compile");
    ir::validate(&module).expect("valid IL");
    Vm::run_main(&module, VmOptions::default()).expect("run")
}

fn output(src: &str) -> Vec<String> {
    run(src).output
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(
        output("int main() { print_int(1 + 2 * 3 - 4 / 2); return 0; }"),
        vec!["5"]
    );
    assert_eq!(
        output("int main() { print_int((1 + 2) * (3 - 4) / 3); return 0; }"),
        vec!["-1"]
    );
    assert_eq!(
        output("int main() { print_int(7 % 3); return 0; }"),
        vec!["1"]
    );
    assert_eq!(
        output("int main() { print_int(1 << 4); return 0; }"),
        vec!["16"]
    );
    assert_eq!(
        output("int main() { print_int(6 & 3); return 0; }"),
        vec!["2"]
    );
    assert_eq!(
        output("int main() { print_int(6 | 3); return 0; }"),
        vec!["7"]
    );
    assert_eq!(
        output("int main() { print_int(6 ^ 3); return 0; }"),
        vec!["5"]
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        output("int main() { print_int(3 < 4 && 4 <= 4 && 5 > 4 && 4 >= 4); return 0; }"),
        vec!["1"]
    );
    assert_eq!(
        output("int main() { print_int(1 == 2 || 2 != 2 || !0); return 0; }"),
        vec!["1"]
    );
}

#[test]
fn short_circuit_skips_side_effects() {
    let out = output(
        r#"
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
    int r = 0 && bump();
    r = 1 || bump();
    print_int(hits);
    return 0;
}
"#,
    );
    assert_eq!(out, vec!["0"]);
}

#[test]
fn doubles_and_conversions() {
    assert_eq!(
        output("int main() { double d = 3; print_float(d / 2); return 0; }"),
        vec!["1.500000"]
    );
    assert_eq!(
        output("int main() { int x = 7.9; print_int(x); return 0; }"),
        vec!["7"]
    );
    assert_eq!(
        output("int main() { print_float(sqrt(16.0)); return 0; }"),
        vec!["4.000000"]
    );
    assert_eq!(
        output("int main() { print_float(pow(2.0, 10.0)); return 0; }"),
        vec!["1024.000000"]
    );
}

#[test]
fn control_flow() {
    assert_eq!(
        output(
            r#"
int main() {
    int i;
    int evens = 0;
    int total = 0;
    for (i = 0; i < 20; i++) {
        if (i % 2 == 0) { evens++; } else { continue; }
        if (i > 10) break;
        total += i;
    }
    print_int(evens);
    print_int(total);
    return 0;
}
"#
        ),
        vec!["7", "30"] // evens seen: 0..=12 step 2 (7 of them); total = 0+2+4+6+8+10
    );
}

#[test]
fn while_and_do_while() {
    assert_eq!(
        output(
            r#"
int main() {
    int n = 5;
    int f = 1;
    while (n > 1) { f *= n; n--; }
    print_int(f);
    int c = 0;
    do { c++; } while (c < 3);
    print_int(c);
    do { c++; } while (0);
    print_int(c);
    return 0;
}
"#
        ),
        vec!["120", "3", "4"]
    );
}

#[test]
fn globals_persist_across_calls() {
    assert_eq!(
        output(
            r#"
int count = 10;
void bump() { count += 1; }
int main() {
    bump(); bump(); bump();
    print_int(count);
    return 0;
}
"#
        ),
        vec!["13"]
    );
}

#[test]
fn recursion() {
    assert_eq!(
        output(
            r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(15)); return 0; }
"#
        ),
        vec!["610"]
    );
}

#[test]
fn pointers_and_address_of() {
    assert_eq!(
        output(
            r#"
void set(int *p, int v) { *p = v; }
int main() {
    int x = 1;
    set(&x, 42);
    print_int(x);
    int *q = &x;
    *q = *q + 1;
    print_int(x);
    return 0;
}
"#
        ),
        vec!["42", "43"]
    );
}

#[test]
fn arrays_1d() {
    assert_eq!(
        output(
            r#"
int a[8];
int main() {
    int i;
    for (i = 0; i < 8; i++) a[i] = i * i;
    int s = 0;
    for (i = 0; i < 8; i++) s += a[i];
    print_int(s);
    return 0;
}
"#
        ),
        vec!["140"]
    );
}

#[test]
fn arrays_2d() {
    assert_eq!(
        output(
            r#"
int m[3][4];
int main() {
    int i; int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    print_int(m[2][3]);
    print_int(m[0][0]);
    int s = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            s += m[i][j];
    print_int(s);
    return 0;
}
"#
        ),
        vec!["23", "0", "138"]
    );
}

#[test]
fn local_arrays() {
    assert_eq!(
        output(
            r#"
int main() {
    int buf[5];
    int i;
    for (i = 0; i < 5; i++) buf[i] = i + 1;
    print_int(buf[0] + buf[4]);
    return 0;
}
"#
        ),
        vec!["6"]
    );
}

#[test]
fn array_decay_to_pointer_param() {
    assert_eq!(
        output(
            r#"
int sum(int *a, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}
int data[4] = {10, 20, 30, 40};
int main() { print_int(sum(data, 4)); return 0; }
"#
        ),
        vec!["100"]
    );
}

#[test]
fn global_initializers() {
    assert_eq!(
        output(
            r#"
int x = -5;
double d = 2.5;
int a[3] = {7, 8, 9};
double f[2] = {0.5, 1.5};
int main() {
    print_int(x + a[0] + a[1] + a[2]);
    print_float(d + f[0] + f[1]);
    return 0;
}
"#
        ),
        vec!["19", "4.500000"]
    );
}

#[test]
fn malloc_and_heap() {
    assert_eq!(
        output(
            r#"
int main() {
    int *p = malloc(10);
    int i;
    for (i = 0; i < 10; i++) p[i] = i;
    int s = 0;
    for (i = 0; i < 10; i++) s += p[i];
    print_int(s);
    return 0;
}
"#
        ),
        vec!["45"]
    );
}

#[test]
fn linked_list_via_heap() {
    // cells: [value, next]; null is 0.
    assert_eq!(
        output(
            r#"
int main() {
    int *head = 0;
    int i;
    for (i = 1; i <= 5; i++) {
        int *node = malloc(2);
        node[0] = i;
        node[1] = head;
        head = node;
    }
    int s = 0;
    while (head != 0) {
        s += head[0];
        head = head[1];
    }
    print_int(s);
    return 0;
}
"#
        ),
        vec!["15"]
    );
}

#[test]
fn pointer_arithmetic_walk() {
    assert_eq!(
        output(
            r#"
int a[5] = {1, 2, 3, 4, 5};
int main() {
    int *p = a;
    int *end = a + 5;
    int s = 0;
    while (p < end) {
        s += *p;
        p = p + 1;
    }
    print_int(s);
    return 0;
}
"#
        ),
        vec!["15"]
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        output(
            r#"
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int main() {
    func f = twice;
    print_int(f(10));
    f = &thrice;
    print_int(f(10));
    return 0;
}
"#
        ),
        vec!["20", "30"]
    );
}

#[test]
fn shadowing_scopes() {
    assert_eq!(
        output(
            r#"
int x = 100;
int main() {
    int x = 1;
    {
        int x = 2;
        print_int(x);
    }
    print_int(x);
    return 0;
}
"#
        ),
        vec!["2", "1"]
    );
}

#[test]
fn exit_stops_program() {
    let out = run(r#"
int main() {
    print_int(1);
    exit(3);
    print_int(2);
    return 0;
}
"#);
    assert_eq!(out.output, vec!["1"]);
    assert_eq!(out.exit_code, 3);
}

#[test]
fn addressed_local_is_memory_resident() {
    // `x` has its address taken, so unoptimized code must reference memory.
    let out = run(r#"
int main() {
    int x = 0;
    int *p = &x;
    int i;
    for (i = 0; i < 100; i++) { x = x + 1; }
    print_int(x + *p);
    return 0;
}
"#);
    assert_eq!(out.output, vec!["200"]);
    // x is loaded and stored in the loop: at least 100 loads and stores.
    assert!(out.counts.loads >= 100, "loads = {}", out.counts.loads);
    assert!(out.counts.stores >= 100, "stores = {}", out.counts.stores);
}

#[test]
fn unaddressed_local_stays_in_registers() {
    let out = run(r#"
int main() {
    int x = 0;
    int i;
    for (i = 0; i < 100; i++) { x = x + 1; }
    print_int(x);
    return 0;
}
"#);
    assert_eq!(out.output, vec!["100"]);
    assert_eq!(out.counts.loads, 0);
    assert_eq!(out.counts.stores, 0);
}

#[test]
fn global_access_is_memory_before_promotion() {
    let out = run(r#"
int g;
int main() {
    int i;
    for (i = 0; i < 50; i++) { g = g + 1; }
    print_int(g);
    return 0;
}
"#);
    assert_eq!(out.output, vec!["50"]);
    assert!(out.counts.loads >= 50);
    assert!(out.counts.stores >= 50);
}

#[test]
fn type_errors_are_reported() {
    for (src, needle) in [
        ("int main() { return x; }", "unknown identifier"),
        ("int main() { int x; return x(1); }", "cannot call"),
        ("int main() { double d; return d % 2; }", "invalid operands"),
        ("int main() { break; }", "break outside a loop"),
        ("void f() { return 1; }", "void function returns a value"),
        (
            "int main() { int a[3]; a = 0; return 0; }",
            "cannot convert",
        ),
        (
            "int f(int x) { return x; } int main() { return f(); }",
            "expects 1 arguments",
        ),
        (
            "int main() { print_int(1, 2); return 0; }",
            "expects 1 arguments",
        ),
        ("int sqrt(int x) { return x; }", "builtin"),
    ] {
        let e = minic::compile(src).expect_err(src);
        assert!(
            e.message.contains(needle),
            "source {src:?}: expected {needle:?} in {:?}",
            e.message
        );
    }
}

#[test]
fn comments_and_formatting() {
    assert_eq!(
        output("int main() { /* block */ int x = 1; // line\n print_int(x); return 0; }"),
        vec!["1"]
    );
}

#[test]
fn deeply_nested_loops() {
    assert_eq!(
        output(
            r#"
int main() {
    int i; int j; int k;
    int n = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 3; j++)
            for (k = 0; k < 3; k++)
                n++;
    print_int(n);
    return 0;
}
"#
        ),
        vec!["27"]
    );
}

#[test]
fn figure3_shape_runs() {
    // The paper's Figure 3 kernel: B[i] += A[i][j].
    assert_eq!(
        output(
            r#"
int A[4][5];
int B[4];
int main() {
    int i; int j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 5; j++)
            A[i][j] = i + j;
    for (i = 0; i < 4; i++) {
        B[i] = 0;
        for (j = 0; j < 5; j++) {
            B[i] += A[i][j];
        }
    }
    print_int(B[0] + B[1] + B[2] + B[3]);
    return 0;
}
"#
        ),
        vec!["70"]
    );
}
