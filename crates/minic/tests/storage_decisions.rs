//! Tests of the front end's storage decisions — the paper's premise that
//! the compiler enregisters what it can prove safe and leaves the rest in
//! tagged memory.

use ir::{Instr, TagKind};

fn compile(src: &str) -> ir::Module {
    minic::compile(src).expect("compile")
}

fn count_mem_ops(m: &ir::Module, func: &str) -> (usize, usize) {
    let f = m.func(m.lookup_func(func).unwrap());
    let mut scalar = 0;
    let mut ptr = 0;
    for b in &f.blocks {
        for i in &b.instrs {
            match i {
                Instr::SLoad { .. } | Instr::SStore { .. } | Instr::CLoad { .. } => scalar += 1,
                Instr::Load { .. } | Instr::Store { .. } => ptr += 1,
                _ => {}
            }
        }
    }
    (scalar, ptr)
}

#[test]
fn unaddressed_locals_get_no_tags_or_memory_ops() {
    let m = compile(
        r#"
int main() {
    int a = 1;
    int b = a + 2;
    int c = b * a;
    return c;
}
"#,
    );
    assert_eq!(m.tags.len(), 0, "no storage tags at all");
    assert_eq!(count_mem_ops(&m, "main"), (0, 0));
}

#[test]
fn address_taken_locals_get_local_tags() {
    let m = compile(
        r#"
int main() {
    int a = 1;
    int *p = &a;
    return *p;
}
"#,
    );
    let tag = m.tags.lookup("main.a").expect("a has a tag");
    let info = m.tags.info(tag);
    assert_eq!(
        info.kind,
        TagKind::Local {
            owner: m.main().unwrap().0
        }
    );
    assert!(info.address_taken);
    assert_eq!(info.size, 1);
}

#[test]
fn addressed_params_get_param_tags_and_entry_stores() {
    let m = compile(
        r#"
int deref_arg(int v) {
    int *p = &v;
    return *p;
}
int main() { return deref_arg(41) + 1; }
"#,
    );
    let tag = m.tags.lookup("deref_arg.v").expect("param tag");
    assert!(matches!(m.tags.info(tag).kind, TagKind::Param { .. }));
    // The incoming value is stored to the tag at entry.
    let f = m.func(m.lookup_func("deref_arg").unwrap());
    assert!(matches!(
        f.block(f.entry).instrs.first(),
        Some(Instr::SStore { .. })
    ));
}

#[test]
fn globals_get_global_tags_and_scalar_ops() {
    let m = compile(
        r#"
int counter;
int main() {
    counter = counter + 1;
    return counter;
}
"#,
    );
    let tag = m.tags.lookup("g:counter").expect("global tag");
    assert_eq!(m.tags.info(tag).kind, TagKind::Global);
    let (scalar, ptr) = count_mem_ops(&m, "main");
    assert_eq!(
        (scalar, ptr),
        (3, 0),
        "two loads + one store, all scalar form"
    );
}

#[test]
fn arrays_are_memory_resident_with_singleton_tag_sets() {
    let m = compile(
        r#"
int table[8];
int main() {
    table[3] = 9;
    return table[3];
}
"#,
    );
    let tag = m.tags.lookup("g:table").unwrap();
    assert_eq!(m.tags.info(tag).size, 8);
    let f = m.func(m.main().unwrap());
    let sets: Vec<_> = f
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter_map(|i| match i {
            Instr::Load { tags, .. } | Instr::Store { tags, .. } => Some(tags.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(sets.len(), 2);
    for s in sets {
        assert_eq!(
            s.as_singleton(),
            Some(tag),
            "direct indexing keeps {{table}}"
        );
    }
}

#[test]
fn pointer_dereferences_start_conservative() {
    let m = compile(
        r#"
int main() {
    int x = 0;
    int *p = &x;
    *p = 5;
    return x;
}
"#,
    );
    let f = m.func(m.main().unwrap());
    let store_tags = f
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .find_map(|i| match i {
            Instr::Store { tags, .. } => Some(tags.clone()),
            _ => None,
        })
        .expect("store through p");
    assert!(
        store_tags.is_all(),
        "the front end emits {{*}}; analysis shrinks it"
    );
}

#[test]
fn shadowed_locals_get_distinct_tags() {
    let m = compile(
        r#"
int take(int *p, int *q) { return *p + *q; }
int main() {
    int x = 1;
    int *p = &x;
    {
        int x = 2;
        int *q = &x;
        return take(p, q);
    }
}
"#,
    );
    assert!(m.tags.lookup("main.x").is_some());
    assert!(
        m.tags.lookup("main.x.1").is_some(),
        "inner x gets a fresh tag"
    );
}

#[test]
fn each_malloc_site_gets_its_own_heap_tag() {
    let m = compile(
        r#"
int main() {
    int *a = malloc(4);
    int *b = malloc(4);
    a[0] = 1;
    b[0] = 2;
    return a[0] + b[0];
}
"#,
    );
    assert!(m.tags.lookup("heap@0").is_some());
    assert!(m.tags.lookup("heap@1").is_some());
    assert!(m.tags.lookup("heap@2").is_none());
}

#[test]
fn calls_start_with_all_sets_intrinsics_with_empty() {
    let m = compile(
        r#"
void helper() { }
int main() {
    helper();
    print_int(1);
    return 0;
}
"#,
    );
    let f = m.func(m.main().unwrap());
    let calls: Vec<_> = f
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter_map(|i| match i {
            Instr::Call { mods, refs, .. } => Some((mods.clone(), refs.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(calls.len(), 2);
    assert!(
        calls[0].0.is_all() && calls[0].1.is_all(),
        "direct call: {{*}}"
    );
    assert!(
        calls[1].0.is_empty() && calls[1].1.is_empty(),
        "intrinsic: {{}}"
    );
}
