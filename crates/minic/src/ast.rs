//! The MiniC abstract syntax tree.

use crate::token::Pos;
use std::fmt;

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// A function pointer (dynamically checked arity).
    Func,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Array of `n` elements of `T` (possibly itself an array).
    Array(Box<Type>, usize),
}

impl Type {
    /// Size in value cells.
    pub fn size_cells(&self) -> usize {
        match self {
            Type::Array(elem, n) => elem.size_cells() * n,
            _ => 1,
        }
    }

    /// True for scalar (single-cell) types.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Type::Array(..))
    }

    /// True for arithmetic types.
    pub fn is_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Double)
    }

    /// The type a value of this type has after array-to-pointer decay.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// The pointee/element type for pointers and arrays.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Double => write!(f, "double"),
            Type::Func => write!(f, "func"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// Binary operators (after desugaring compound assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable or function name.
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (compound assignments are desugared by the
    /// parser).
    Assign(Box<Expr>, Box<Expr>),
    /// Call; the callee is an expression (an identifier naming a function
    /// or intrinsic, or a `func`-typed variable).
    Call(Box<Expr>, Vec<Expr>),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e` (of an identifier or an index expression).
    AddrOf(Box<Expr>),
    /// Heap allocation `malloc(n)` of `n` cells.
    Malloc(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the surface syntax
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
        pos: Pos,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while` loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// `do { } while (cond);` loop.
    DoWhile { body: Vec<Stmt>, cond: Expr },
    /// `for` loop; all three headers optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return { value: Option<Expr>, pos: Pos },
    /// `break`.
    Break(Pos),
    /// `continue`.
    Continue(Pos),
    /// Nested block.
    Block(Vec<Stmt>),
}

/// Initializer for a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInitAst {
    /// A single number.
    Scalar(Expr),
    /// `{ a, b, c }` for arrays.
    List(Vec<Expr>),
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (literals only).
    pub init: Option<GlobalInitAst>,
    /// Position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Return type; `None` = `void`.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions, in declaration order.
    pub funcs: Vec<FuncDecl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size_cells(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Double)).size_cells(), 1);
        let row = Type::Array(Box::new(Type::Int), 20);
        let mat = Type::Array(Box::new(row.clone()), 10);
        assert_eq!(row.size_cells(), 20);
        assert_eq!(mat.size_cells(), 200);
        assert!(!mat.is_scalar());
        assert_eq!(mat.decayed(), Type::Ptr(Box::new(row)));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Ptr(Box::new(Type::Int)).to_string(), "int*");
        assert_eq!(
            Type::Array(Box::new(Type::Double), 3).to_string(),
            "double[3]"
        );
    }
}
