//! The MiniC abstract syntax tree, stored in flat arenas.
//!
//! Tree edges are `u32` indices ([`ExprId`], [`StmtId`]) into pools owned
//! by the [`Program`] instead of `Box` pointers, and child lists are
//! contiguous ranges ([`ExprList`], [`StmtList`]) into side pools instead
//! of per-node `Vec`s. A parse therefore performs a handful of amortized
//! `Vec` pushes rather than one heap allocation per node, and the pools
//! are recycled across compiles by [`crate::Frontend`] the same way the
//! driver recycles its `PassScratch` arenas. Names are interned
//! [`Symbol`]s; resolve them through the interner that lexed the program.

use crate::intern::Symbol;
use crate::token::Pos;
use std::fmt;

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// A function pointer (dynamically checked arity).
    Func,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Array of `n` elements of `T` (possibly itself an array).
    Array(Box<Type>, usize),
}

impl Type {
    /// Size in value cells.
    pub fn size_cells(&self) -> usize {
        match self {
            Type::Array(elem, n) => elem.size_cells() * n,
            _ => 1,
        }
    }

    /// True for scalar (single-cell) types.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Type::Array(..))
    }

    /// True for arithmetic types.
    pub fn is_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Double)
    }

    /// The type a value of this type has after array-to-pointer decay.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// The pointee/element type for pointers and arrays.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Double => write!(f, "double"),
            Type::Func => write!(f, "func"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// Binary operators (after desugaring compound assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression's index in its [`Program`]'s expression pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprId(pub u32);

/// A statement's index in its [`Program`]'s statement pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtId(pub u32);

/// A contiguous run of [`ExprId`]s in the program's sequence pool —
/// argument lists and initializer lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprList {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl ExprList {
    /// An empty list.
    pub fn empty() -> ExprList {
        ExprList { start: 0, len: 0 }
    }

    /// Number of expressions in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the list has no expressions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A contiguous run of [`StmtId`]s in the program's sequence pool —
/// statement blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtList {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl StmtList {
    /// An empty block.
    pub fn empty() -> StmtList {
        StmtList { start: 0, len: 0 }
    }

    /// Number of statements in the block.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An expression with its source position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Expr {
    /// The expression.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds. Children are arena ids; the parser may share a
/// subtree between two edges (compound-assignment and `++`/`--`
/// desugaring reuse the lvalue id on both sides), which is sound because
/// lowering never mutates nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable or function name.
    Ident(Symbol),
    /// Unary operation.
    Unary(UnaryOp, ExprId),
    /// Binary operation.
    Binary(BinaryOp, ExprId, ExprId),
    /// Assignment `lhs = rhs` (compound assignments are desugared by the
    /// parser).
    Assign(ExprId, ExprId),
    /// Call; the callee is an expression (an identifier naming a function
    /// or intrinsic, or a `func`-typed variable).
    Call(ExprId, ExprList),
    /// Indexing `base[index]`.
    Index(ExprId, ExprId),
    /// Dereference `*e`.
    Deref(ExprId),
    /// Address-of `&e` (of an identifier or an index expression).
    AddrOf(ExprId),
    /// Heap allocation `malloc(n)` of `n` cells.
    Malloc(ExprId),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the surface syntax
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        name: Symbol,
        ty: Type,
        init: Option<ExprId>,
        pos: Pos,
    },
    /// Expression statement.
    Expr(ExprId),
    /// `if` with optional `else`.
    If {
        cond: ExprId,
        then_body: StmtList,
        else_body: StmtList,
    },
    /// `while` loop.
    While { cond: ExprId, body: StmtList },
    /// `do { } while (cond);` loop.
    DoWhile { body: StmtList, cond: ExprId },
    /// `for` loop; all three headers optional.
    For {
        init: Option<StmtId>,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: StmtList,
    },
    /// `return` with optional value.
    Return { value: Option<ExprId>, pos: Pos },
    /// `break`.
    Break(Pos),
    /// `continue`.
    Continue(Pos),
    /// Nested block.
    Block(StmtList),
}

/// Initializer for a global variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalInitAst {
    /// A single number.
    Scalar(ExprId),
    /// `{ a, b, c }` for arrays.
    List(ExprList),
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (literals only).
    pub init: Option<GlobalInitAst>,
    /// Position.
    pub pos: Pos,
}

/// A parameter list: a contiguous run in the program's parameter pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamList {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl ParamList {
    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for a nullary function.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: Symbol,
    /// Return type; `None` = `void`.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: ParamList,
    /// Body.
    pub body: StmtList,
    /// Position.
    pub pos: Pos,
}

/// A whole translation unit: declarations plus the flat node pools every
/// id indexes into.
///
/// The pools survive [`Program::clear`], so a recycled program re-parses
/// without reallocating (beyond first-compile growth). All reads go
/// through the accessor methods; ids and lists from a cleared program
/// must not be used against the refilled one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions, in declaration order.
    pub funcs: Vec<FuncDecl>,
    exprs: Vec<Expr>,
    stmts: Vec<Stmt>,
    expr_seq: Vec<ExprId>,
    stmt_seq: Vec<StmtId>,
    params: Vec<(Symbol, Type)>,
}

impl Program {
    /// The expression behind an id.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The statement behind an id.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// The expression ids of a list.
    pub fn expr_list(&self, list: ExprList) -> &[ExprId] {
        &self.expr_seq[list.start as usize..(list.start + list.len) as usize]
    }

    /// The statement ids of a block.
    pub fn stmt_list(&self, list: StmtList) -> &[StmtId] {
        &self.stmt_seq[list.start as usize..(list.start + list.len) as usize]
    }

    /// The `(name, type)` pairs of a parameter list.
    pub fn param_list(&self, list: ParamList) -> &[(Symbol, Type)] {
        &self.params[list.start as usize..(list.start + list.len) as usize]
    }

    /// Adds an expression to the pool.
    pub fn add_expr(&mut self, kind: ExprKind, pos: Pos) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(Expr { kind, pos });
        id
    }

    /// Adds a statement to the pool.
    pub fn add_stmt(&mut self, stmt: Stmt) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(stmt);
        id
    }

    /// Moves `stack[mark..]` into the expression-sequence pool, returning
    /// the list covering it. The parser builds child lists on a reusable
    /// stack and flushes each completed level here.
    pub fn push_expr_list(&mut self, stack: &mut Vec<ExprId>, mark: usize) -> ExprList {
        let start = self.expr_seq.len() as u32;
        self.expr_seq.extend(stack.drain(mark..));
        ExprList {
            start,
            len: self.expr_seq.len() as u32 - start,
        }
    }

    /// Moves `stack[mark..]` into the statement-sequence pool, returning
    /// the block covering it.
    pub fn push_stmt_list(&mut self, stack: &mut Vec<StmtId>, mark: usize) -> StmtList {
        let start = self.stmt_seq.len() as u32;
        self.stmt_seq.extend(stack.drain(mark..));
        StmtList {
            start,
            len: self.stmt_seq.len() as u32 - start,
        }
    }

    /// Moves `stack[mark..]` into the parameter pool.
    pub fn push_param_list(&mut self, stack: &mut Vec<(Symbol, Type)>, mark: usize) -> ParamList {
        let start = self.params.len() as u32;
        self.params.extend(stack.drain(mark..));
        ParamList {
            start,
            len: self.params.len() as u32 - start,
        }
    }

    /// Empties the program while keeping every pool's capacity, ready to
    /// be refilled by the next parse.
    pub fn clear(&mut self) {
        self.globals.clear();
        self.funcs.clear();
        self.exprs.clear();
        self.stmts.clear();
        self.expr_seq.clear();
        self.stmt_seq.clear();
        self.params.clear();
    }

    /// Total pooled expression nodes (diagnostics/tests).
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Total pooled statement nodes (diagnostics/tests).
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size_cells(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Double)).size_cells(), 1);
        let row = Type::Array(Box::new(Type::Int), 20);
        let mat = Type::Array(Box::new(row.clone()), 10);
        assert_eq!(row.size_cells(), 20);
        assert_eq!(mat.size_cells(), 200);
        assert!(!mat.is_scalar());
        assert_eq!(mat.decayed(), Type::Ptr(Box::new(row)));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Ptr(Box::new(Type::Int)).to_string(), "int*");
        assert_eq!(
            Type::Array(Box::new(Type::Double), 3).to_string(),
            "double[3]"
        );
    }

    #[test]
    fn pools_recycle() {
        let mut p = Program::default();
        let pos = Pos::default();
        let a = p.add_expr(ExprKind::IntLit(1), pos);
        let b = p.add_expr(ExprKind::IntLit(2), pos);
        let mut stack = vec![a, b];
        let list = p.push_expr_list(&mut stack, 0);
        assert_eq!(p.expr_list(list), &[a, b]);
        assert!(stack.is_empty());
        p.clear();
        assert_eq!(p.expr_count(), 0);
        let c = p.add_expr(ExprKind::IntLit(3), pos);
        assert_eq!(c, ExprId(0));
        assert!(matches!(p.expr(c).kind, ExprKind::IntLit(3)));
    }

    #[test]
    fn list_flush_is_lifo_safe() {
        // Simulate nested argument lists sharing one stack: the inner
        // list flushes first and the outer keeps its own elements.
        let mut p = Program::default();
        let pos = Pos::default();
        let outer1 = p.add_expr(ExprKind::IntLit(1), pos);
        let inner1 = p.add_expr(ExprKind::IntLit(10), pos);
        let inner2 = p.add_expr(ExprKind::IntLit(20), pos);
        let mut stack = Vec::new();
        stack.push(outer1);
        let outer_mark = stack.len();
        stack.push(inner1);
        stack.push(inner2);
        let inner = p.push_expr_list(&mut stack, outer_mark);
        let outer2 = p.add_expr(ExprKind::Call(inner1, inner), pos);
        stack.push(outer2);
        let outer = p.push_expr_list(&mut stack, 0);
        assert_eq!(p.expr_list(inner), &[inner1, inner2]);
        assert_eq!(p.expr_list(outer), &[outer1, outer2]);
    }
}
