//! The MiniC lexer.
//!
//! Zero-copy: the lexer walks the source as raw bytes and emits `Copy`
//! tokens into a caller-owned buffer. Identifiers are interned — the
//! keyword check and the interner probe both work on the byte slice, so
//! a token never owns a `String` and a warm lex of an already-seen
//! program allocates nothing beyond buffer growth.

use crate::error::{FrontError, Phase};
use crate::intern::Interner;
use crate::token::{Pos, Tok, Token};

/// Tokenizes MiniC source into `out` (cleared first), interning
/// identifiers into `interner`.
///
/// # Errors
///
/// Returns a [`FrontError`] on an unknown character, a malformed number,
/// or an unterminated block comment.
pub fn lex_into(
    src: &str,
    interner: &mut Interner,
    out: &mut Vec<Token>,
) -> Result<(), FrontError> {
    out.clear();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = pos!();
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(FrontError::new(
                            Phase::Lex,
                            start,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        let p = pos!();
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                bump!();
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
            {
                is_float = true;
                bump!();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                bump!();
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    bump!();
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| {
                    FrontError::new(Phase::Lex, p, format!("malformed float literal {text}"))
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| {
                    FrontError::new(
                        Phase::Lex,
                        p,
                        format!("integer literal {text} out of range"),
                    )
                })?)
            };
            out.push(Token { tok, pos: p });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            let word = &bytes[start..i];
            let tok =
                Tok::keyword(word).unwrap_or_else(|| Tok::Ident(interner.intern(&src[start..i])));
            out.push(Token { tok, pos: p });
            continue;
        }
        // Operators; longest match first.
        let two: &[u8] = if i + 1 < bytes.len() {
            &bytes[i..i + 2]
        } else {
            b""
        };
        let tok2 = match two {
            b"+=" => Some(Tok::PlusAssign),
            b"-=" => Some(Tok::MinusAssign),
            b"*=" => Some(Tok::StarAssign),
            b"/=" => Some(Tok::SlashAssign),
            b"%=" => Some(Tok::PercentAssign),
            b"==" => Some(Tok::EqEq),
            b"!=" => Some(Tok::NotEq),
            b"<=" => Some(Tok::Le),
            b">=" => Some(Tok::Ge),
            b"<<" => Some(Tok::Shl),
            b">>" => Some(Tok::Shr),
            b"&&" => Some(Tok::AndAnd),
            b"||" => Some(Tok::OrOr),
            b"++" => Some(Tok::PlusPlus),
            b"--" => Some(Tok::MinusMinus),
            _ => None,
        };
        if let Some(t) = tok2 {
            bump!();
            bump!();
            out.push(Token { tok: t, pos: p });
            continue;
        }
        let tok1 = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'=' => Tok::Assign,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'&' => Tok::Amp,
            b'|' => Tok::Pipe,
            b'^' => Tok::Caret,
            b'!' => Tok::Bang,
            b'<' => Tok::Lt,
            b'>' => Tok::Gt,
            other => {
                return Err(FrontError::new(
                    Phase::Lex,
                    p,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        bump!();
        out.push(Token { tok: tok1, pos: p });
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Result<(Interner, Vec<Token>), FrontError> {
        let mut interner = Interner::new();
        let mut out = Vec::new();
        lex_into(src, &mut interner, &mut out)?;
        Ok((interner, out))
    }

    /// Token kinds with identifiers resolved back to names, for easy
    /// comparison.
    fn spellings(src: &str) -> Vec<String> {
        let (interner, toks) = lex(src).unwrap();
        toks.iter()
            .map(|t| t.tok.display(&interner).to_string())
            .collect()
    }

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().1.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let (interner, ts) = lex("int x while whilex").unwrap();
        assert_eq!(ts[0].tok, Tok::KwInt);
        assert_eq!(ts[2].tok, Tok::KwWhile);
        let (Tok::Ident(x), Tok::Ident(wx)) = (ts[1].tok, ts[3].tok) else {
            panic!("expected identifiers");
        };
        assert_eq!(interner.name(x), "x");
        assert_eq!(interner.name(wx), "whilex");
        assert_eq!(ts[4].tok, Tok::Eof);
    }

    #[test]
    fn repeated_idents_share_a_symbol() {
        let (_, ts) = lex("abc abc abc").unwrap();
        let Tok::Ident(first) = ts[0].tok else {
            panic!()
        };
        assert!(ts[..3].iter().all(|t| t.tok == Tok::Ident(first)));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn integer_boundaries() {
        // i64::MAX lexes; one past it overflows with a position.
        assert_eq!(
            toks("9223372036854775807"),
            vec![Tok::Int(i64::MAX), Tok::Eof]
        );
        let e = lex("x 9223372036854775808").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.pos, Pos { line: 1, col: 3 });
        // `i64::MIN` is minus applied to an out-of-range literal, so the
        // magnitude itself must be rejected at lex time.
        assert!(lex("-9223372036854775808").is_err());
        assert_eq!(
            toks("-9223372036854775807"),
            vec![Tok::Minus, Tok::Int(i64::MAX), Tok::Eof]
        );
    }

    #[test]
    fn malformed_float_errors() {
        // An exponent with no digits parses as a float literal and fails.
        let e = lex("1e").unwrap_err();
        assert!(e.message.contains("malformed float"));
        assert_eq!(e.pos, Pos { line: 1, col: 1 });
        let e = lex("  2.5e+").unwrap_err();
        assert!(e.message.contains("malformed float"));
        assert_eq!(e.pos, Pos { line: 1, col: 3 });
        // A bare trailing dot is *not* part of the number.
        assert!(lex("1.").is_err()); // `.` itself is an unknown character
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            spellings("a<=b == c = d += e++"),
            vec!["a", "<=", "b", "==", "c", "=", "d", "+=", "e", "++", "<eof>"]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            spellings("a // line\n b /* block\n over lines */ c"),
            vec!["a", "b", "c", "<eof>"]
        );
    }

    #[test]
    fn line_comment_at_eof() {
        // A `//` comment closed by end-of-input (no trailing newline) is
        // fine; the block form in the same position is an error.
        assert_eq!(spellings("a // trailing"), vec!["a", "<eof>"]);
        assert_eq!(spellings("//only"), vec!["<eof>"]);
    }

    #[test]
    fn positions_tracked() {
        let (_, ts) = lex("x\n  y").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_errors() {
        let e = lex("/* oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert_eq!(e.pos, Pos { line: 1, col: 1 });
        // Even a lone `/*` right at EOF reports the comment's own start.
        let e = lex("x\n/*").unwrap_err();
        assert_eq!(e.pos, Pos { line: 2, col: 1 });
    }

    #[test]
    fn unknown_character_errors() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.pos, Pos { line: 1, col: 3 });
        // Position reporting survives newlines and tabs.
        let e = lex("ok\n\tbad @here").unwrap_err();
        assert_eq!(e.pos, Pos { line: 2, col: 6 });
    }

    #[test]
    fn keyword_identifier_boundary_sweep() {
        // Every keyword with a one-character suffix (and prefix) must lex
        // as a plain identifier, not as keyword + residue.
        let keywords = [
            "int", "double", "void", "func", "if", "else", "while", "for", "do", "return", "break",
            "continue",
        ];
        for kw in keywords {
            assert_eq!(Tok::keyword(kw.as_bytes()).is_some(), true);
            for decorated in [format!("{kw}x"), format!("{kw}_"), format!("x{kw}")] {
                let (interner, ts) = lex(&decorated).unwrap();
                let Tok::Ident(sym) = ts[0].tok else {
                    panic!("`{decorated}` lexed as a keyword");
                };
                assert_eq!(interner.name(sym), decorated);
                assert_eq!(ts.len(), 2, "`{decorated}` split into several tokens");
            }
        }
        // An underscore-led name containing a keyword is one identifier.
        let (interner, ts) = lex("_if").unwrap();
        let Tok::Ident(sym) = ts[0].tok else { panic!() };
        assert_eq!(interner.name(sym), "_if");
    }
}
