//! The reusable front-end driver.
//!
//! A [`Frontend`] owns every allocation the front end makes — the string
//! interner, the token buffer, the AST pools, and the parser/lowering
//! scratch tables — and recycles them across compiles the same way the
//! driver's `PassScratch` recycles analysis storage. The first compile
//! pays to grow the arenas; subsequent compiles of similar programs
//! reuse that capacity and allocate close to nothing in the lex/parse
//! path.

use crate::ast::Program;
use crate::error::FrontError;
use crate::intern::{Interner, Symbol};
use crate::lexer::lex_into;
use crate::lower::{lower_program, LowerScratch};
use crate::parser::{parse_tokens, ParseScratch};
use crate::token::Token;
use ir::Module;

/// A reusable MiniC front end: interner + token buffer + AST pools +
/// scratch tables, recycled across [`Frontend::compile`] calls.
#[derive(Debug)]
pub struct Frontend {
    interner: Interner,
    tokens: Vec<Token>,
    program: Program,
    parse_scratch: ParseScratch,
    lower_scratch: LowerScratch,
    malloc: Symbol,
}

impl Frontend {
    /// Creates an empty front end.
    #[must_use]
    pub fn new() -> Self {
        let mut interner = Interner::new();
        // Pre-intern `malloc` so the parser can recognize the builtin by
        // symbol comparison instead of a string compare per call site.
        let malloc = interner.intern("malloc");
        Frontend {
            interner,
            tokens: Vec::new(),
            program: Program::default(),
            parse_scratch: ParseScratch::default(),
            lower_scratch: LowerScratch::default(),
            malloc,
        }
    }

    /// Tokenizes `src` into the internal buffer (cleared first).
    ///
    /// # Errors
    ///
    /// Returns the first lex error.
    pub fn lex(&mut self, src: &str) -> Result<(), FrontError> {
        lex_into(src, &mut self.interner, &mut self.tokens)
    }

    /// Parses already-lexed tokens into the internal [`Program`]
    /// (pools are recycled, not reallocated).
    ///
    /// # Errors
    ///
    /// Returns the first parse error.
    pub fn parse_lexed(&mut self) -> Result<(), FrontError> {
        parse_tokens(
            &self.tokens,
            &self.interner,
            self.malloc,
            &mut self.program,
            &mut self.parse_scratch,
        )
    }

    /// Lexes and parses `src`.
    ///
    /// # Errors
    ///
    /// Returns the first lex or parse error.
    pub fn parse(&mut self, src: &str) -> Result<(), FrontError> {
        self.lex(src)?;
        self.parse_lexed()
    }

    /// Lowers the currently parsed program to an IL module.
    ///
    /// # Errors
    ///
    /// Returns the first semantic error.
    pub fn lower_parsed(&mut self) -> Result<Module, FrontError> {
        lower_program(&self.program, &self.interner, &mut self.lower_scratch)
    }

    /// Compiles `src` end to end (lex + parse + lower), reusing every
    /// internal buffer.
    ///
    /// # Errors
    ///
    /// Returns the first front-end error.
    pub fn compile(&mut self, src: &str) -> Result<Module, FrontError> {
        self.parse(src)?;
        self.lower_parsed()
    }

    /// The tokens from the most recent [`Frontend::lex`].
    #[must_use]
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The program from the most recent [`Frontend::parse`].
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The interner accumulated over all compiles so far.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

impl Default for Frontend {
    fn default() -> Self {
        Frontend::new()
    }
}

/// Compiles MiniC source to an IL module with a fresh [`Frontend`].
///
/// Callers that compile repeatedly should hold a [`Frontend`] (or a
/// `Session` with front-end reuse enabled) instead, so arenas and tables
/// are recycled.
///
/// # Errors
///
/// Returns the first front-end error.
pub fn compile(src: &str) -> Result<Module, FrontError> {
    Frontend::new().compile(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let m = compile("int main() { return 40 + 2; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].name, "main");
    }

    #[test]
    fn frontend_recycles_across_compiles() {
        let mut fe = Frontend::new();
        let a = fe.compile("int main() { return 1; }").unwrap();
        let b = fe.compile("int main() { return 1; }").unwrap();
        assert_eq!(ir::module_to_string(&a), ir::module_to_string(&b));
        // The interner keeps names across compiles; the pools are recycled.
        assert!(fe.interner().lookup("main").is_some());
    }

    #[test]
    fn warm_compile_reuses_interner_symbols() {
        let mut fe = Frontend::new();
        fe.parse("int alpha() { return 0; }").unwrap();
        let n = fe.interner().len();
        fe.parse("int alpha() { return 0; }").unwrap();
        assert_eq!(fe.interner().len(), n, "warm parse interned new names");
    }

    #[test]
    fn errors_reported_per_phase() {
        let mut fe = Frontend::new();
        assert!(fe.compile("int main() { return $; }").is_err());
        // The frontend stays usable after an error.
        assert!(fe.compile("int main() { return 0; }").is_ok());
    }
}
