//! Front-end error type.

use crate::token::Pos;
use std::error::Error;
use std::fmt;

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis / type checking.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "type"),
        }
    }
}

/// A MiniC front-end failure with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontError {
    /// The phase that failed.
    pub phase: Phase,
    /// Position of the offending construct.
    pub pos: Pos,
    /// Description.
    pub message: String,
}

impl FrontError {
    /// Creates an error.
    pub fn new(phase: Phase, pos: Pos, message: impl Into<String>) -> Self {
        FrontError {
            phase,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.pos, self.message)
    }
}

impl Error for FrontError {}
