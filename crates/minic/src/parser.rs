//! Recursive-descent parser for MiniC.
//!
//! MiniC is the C subset this reproduction compiles: `int`/`double`
//! scalars, pointers, 1-D and 2-D arrays, globals with initializers,
//! functions (including recursion and `func`-typed function pointers),
//! `malloc`, and the usual statement forms. Compound assignments and
//! `++`/`--` are desugared to plain assignments by the parser; a desugared
//! left-hand side is therefore evaluated twice, so MiniC forbids
//! side-effecting lvalues under those forms (as our programs never need
//! them).
//!
//! The parser reads a token slice (tokens are `Copy` — no `clone()` per
//! `peek`) and builds the arena [`Program`]: nodes go straight into the
//! pools, child lists are accumulated on reusable stacks in
//! [`ParseScratch`] and flushed as contiguous ranges when each level
//! completes. Desugaring *shares* the lvalue's node between the two sides
//! of the rewritten assignment instead of cloning the subtree.

use crate::ast::*;
use crate::error::{FrontError, Phase};
use crate::intern::{Interner, Symbol};
use crate::token::{Pos, Tok, Token};

/// Reusable child-list stacks for the parser; owned by
/// [`crate::Frontend`] so repeat parses push into warm buffers.
#[derive(Debug, Default)]
pub struct ParseScratch {
    expr_stack: Vec<ExprId>,
    stmt_stack: Vec<StmtId>,
    param_stack: Vec<(Symbol, Type)>,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    interner: &'a Interner,
    /// The pre-interned name `malloc`, special-cased in `parse_primary`.
    malloc: Symbol,
    program: &'a mut Program,
    scratch: &'a mut ParseScratch,
}

type Result<T> = std::result::Result<T, FrontError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> Tok {
        self.toks[self.pos].tok
    }

    fn peek2(&self) -> Tok {
        self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(FrontError::new(Phase::Parse, self.here(), message))
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!(
                "expected `{}`, found `{}`",
                tok.display(self.interner),
                self.peek().display(self.interner)
            ))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Symbol> {
        match self.peek() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!(
                "expected identifier, found `{}`",
                other.display(self.interner)
            )),
        }
    }

    /// True if the current token begins a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwDouble | Tok::KwFunc | Tok::KwVoid
        )
    }

    /// Parses a base type plus pointer stars. Returns `None` for `void`.
    fn parse_type(&mut self) -> Result<Option<Type>> {
        let base = match self.bump() {
            Tok::KwInt => Some(Type::Int),
            Tok::KwDouble => Some(Type::Double),
            Tok::KwFunc => Some(Type::Func),
            Tok::KwVoid => None,
            other => {
                return self.err(format!(
                    "expected type, found `{}`",
                    other.display(self.interner)
                ))
            }
        };
        let mut ty = base;
        while self.eat(Tok::Star) {
            match ty {
                Some(t) => ty = Some(Type::Ptr(Box::new(t))),
                None => return self.err("pointer to void is not supported"),
            }
        }
        Ok(ty)
    }

    /// Parses `[N][M]...` dimensions onto `ty` (innermost dimension last).
    fn parse_dims(&mut self, mut ty: Type) -> Result<Type> {
        let mut dims = Vec::new();
        while self.eat(Tok::LBracket) {
            match self.bump() {
                Tok::Int(n) if n > 0 => dims.push(n as usize),
                other => {
                    return self.err(format!(
                        "expected array size, found `{}`",
                        other.display(self.interner)
                    ))
                }
            }
            self.expect(Tok::RBracket)?;
        }
        for &n in dims.iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn parse_program(&mut self) -> Result<()> {
        while self.peek() != Tok::Eof {
            let pos = self.here();
            if !self.at_type() {
                return self.err(format!(
                    "expected a declaration, found `{}`",
                    self.peek().display(self.interner)
                ));
            }
            let ty = self.parse_type()?;
            let name = self.ident()?;
            if self.peek() == Tok::LParen {
                let f = self.parse_func(ty, name, pos)?;
                self.program.funcs.push(f);
            } else {
                let ty = ty.ok_or_else(|| {
                    FrontError::new(Phase::Parse, pos, "global variables cannot be void")
                })?;
                let g = self.parse_global(ty, name, pos)?;
                self.program.globals.push(g);
            }
        }
        Ok(())
    }

    fn parse_global(&mut self, ty: Type, name: Symbol, pos: Pos) -> Result<GlobalDecl> {
        let ty = self.parse_dims(ty)?;
        let init = if self.eat(Tok::Assign) {
            if self.eat(Tok::LBrace) {
                let mark = self.scratch.expr_stack.len();
                loop {
                    let item = self.parse_expr()?;
                    self.scratch.expr_stack.push(item);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                let items = self
                    .program
                    .push_expr_list(&mut self.scratch.expr_stack, mark);
                Some(GlobalInitAst::List(items))
            } else {
                Some(GlobalInitAst::Scalar(self.parse_expr()?))
            }
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            pos,
        })
    }

    fn parse_func(&mut self, ret: Option<Type>, name: Symbol, pos: Pos) -> Result<FuncDecl> {
        self.expect(Tok::LParen)?;
        let mark = self.scratch.param_stack.len();
        if !self.eat(Tok::RParen) {
            // `void` alone means no parameters.
            if self.peek() == Tok::KwVoid && self.peek2() == Tok::RParen {
                self.bump();
                self.expect(Tok::RParen)?;
            } else {
                loop {
                    let pty = self.parse_type()?.ok_or_else(|| {
                        FrontError::new(Phase::Parse, self.here(), "void parameter")
                    })?;
                    let pname = self.ident()?;
                    // Array parameters decay to pointers: `int a[]`,
                    // `int m[][20]`.
                    let mut pty = pty;
                    if self.peek() == Tok::LBracket {
                        self.bump();
                        // Optional first dimension is ignored.
                        if let Tok::Int(_) = self.peek() {
                            self.bump();
                        }
                        self.expect(Tok::RBracket)?;
                        let inner = self.parse_dims(pty)?;
                        pty = Type::Ptr(Box::new(inner));
                    }
                    self.scratch.param_stack.push((pname, pty));
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
        }
        let params = self
            .program
            .push_param_list(&mut self.scratch.param_stack, mark);
        self.expect(Tok::LBrace)?;
        let body = self.parse_block_body()?;
        Ok(FuncDecl {
            name,
            ret,
            params,
            body,
            pos,
        })
    }

    fn parse_block_body(&mut self) -> Result<StmtList> {
        let mark = self.scratch.stmt_stack.len();
        while !self.eat(Tok::RBrace) {
            if self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            let s = self.parse_stmt()?;
            self.scratch.stmt_stack.push(s);
        }
        Ok(self
            .program
            .push_stmt_list(&mut self.scratch.stmt_stack, mark))
    }

    fn parse_stmt(&mut self) -> Result<StmtId> {
        let pos = self.here();
        let stmt = match self.peek() {
            Tok::KwInt | Tok::KwDouble | Tok::KwFunc => {
                let ty = self.parse_type()?.expect("non-void here");
                let name = self.ident()?;
                let ty = self.parse_dims(ty)?;
                let init = if self.eat(Tok::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Stmt::Decl {
                    name,
                    ty,
                    init,
                    pos,
                }
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.parse_stmt_as_block()?;
                let else_body = if self.eat(Tok::KwElse) {
                    self.parse_stmt_as_block()?
                } else {
                    StmtList::empty()
                };
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                }
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Stmt::While { cond, body }
            }
            Tok::KwDo => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Stmt::DoWhile { body, cond }
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else if self.at_type() {
                    // C99-style `for (int i = 0; ...)`.
                    Some(self.parse_stmt()?)
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Some(self.program.add_stmt(Stmt::Expr(e)))
                };
                let cond = if self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Semi)?;
                Stmt::Return { value, pos }
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Stmt::Break(pos)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Stmt::Continue(pos)
            }
            Tok::LBrace => {
                self.bump();
                Stmt::Block(self.parse_block_body()?)
            }
            Tok::Semi => {
                self.bump();
                Stmt::Block(StmtList::empty())
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Stmt::Expr(e)
            }
        };
        Ok(self.program.add_stmt(stmt))
    }

    fn parse_stmt_as_block(&mut self) -> Result<StmtList> {
        if self.eat(Tok::LBrace) {
            self.parse_block_body()
        } else {
            let mark = self.scratch.stmt_stack.len();
            let s = self.parse_stmt()?;
            self.scratch.stmt_stack.push(s);
            Ok(self
                .program
                .push_stmt_list(&mut self.scratch.stmt_stack, mark))
        }
    }

    fn parse_expr(&mut self) -> Result<ExprId> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<ExprId> {
        let lhs = self.parse_binary(0)?;
        let pos = self.here();
        let compound = |op: BinaryOp| Some(op);
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => compound(BinaryOp::Add),
            Tok::MinusAssign => compound(BinaryOp::Sub),
            Tok::StarAssign => compound(BinaryOp::Mul),
            Tok::SlashAssign => compound(BinaryOp::Div),
            Tok::PercentAssign => compound(BinaryOp::Rem),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?;
        // Compound assignment shares `lhs` between both sides of the
        // desugared form — an arena id, not a subtree clone.
        let rhs = match op {
            None => rhs,
            Some(op) => self.program.add_expr(ExprKind::Binary(op, lhs, rhs), pos),
        };
        Ok(self.program.add_expr(ExprKind::Assign(lhs, rhs), pos))
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Result<ExprId> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinaryOp::LogOr, 1),
                Tok::AndAnd => (BinaryOp::LogAnd, 2),
                Tok::Pipe => (BinaryOp::BitOr, 3),
                Tok::Caret => (BinaryOp::BitXor, 4),
                Tok::Amp => (BinaryOp::BitAnd, 5),
                Tok::EqEq => (BinaryOp::Eq, 6),
                Tok::NotEq => (BinaryOp::Ne, 6),
                Tok::Lt => (BinaryOp::Lt, 7),
                Tok::Le => (BinaryOp::Le, 7),
                Tok::Gt => (BinaryOp::Gt, 7),
                Tok::Ge => (BinaryOp::Ge, 7),
                Tok::Shl => (BinaryOp::Shl, 8),
                Tok::Shr => (BinaryOp::Shr, 8),
                Tok::Plus => (BinaryOp::Add, 9),
                Tok::Minus => (BinaryOp::Sub, 9),
                Tok::Star => (BinaryOp::Mul, 10),
                Tok::Slash => (BinaryOp::Div, 10),
                Tok::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let pos = self.here();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = self.program.add_expr(ExprKind::Binary(op, lhs, rhs), pos);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<ExprId> {
        let pos = self.here();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(self.program.add_expr(ExprKind::Unary(UnaryOp::Neg, e), pos))
            }
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(self.program.add_expr(ExprKind::Unary(UnaryOp::Not, e), pos))
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(self.program.add_expr(ExprKind::Deref(e), pos))
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(self.program.add_expr(ExprKind::AddrOf(e), pos))
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let op = if self.bump() == Tok::PlusPlus {
                    BinaryOp::Add
                } else {
                    BinaryOp::Sub
                };
                let e = self.parse_unary()?;
                Ok(self.desugar_incr(e, op, pos))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<ExprId> {
        let mut e = self.parse_primary()?;
        loop {
            let pos = self.here();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = self.program.add_expr(ExprKind::Index(e, idx), pos);
                }
                Tok::LParen => {
                    self.bump();
                    let mark = self.scratch.expr_stack.len();
                    if !self.eat(Tok::RParen) {
                        loop {
                            let arg = self.parse_expr()?;
                            self.scratch.expr_stack.push(arg);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    let args = self
                        .program
                        .push_expr_list(&mut self.scratch.expr_stack, mark);
                    e = self.program.add_expr(ExprKind::Call(e, args), pos);
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = self.desugar_incr(e, BinaryOp::Add, pos);
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = self.desugar_incr(e, BinaryOp::Sub, pos);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<ExprId> {
        let pos = self.here();
        match self.bump() {
            Tok::Int(v) => Ok(self.program.add_expr(ExprKind::IntLit(v), pos)),
            Tok::Float(v) => Ok(self.program.add_expr(ExprKind::FloatLit(v), pos)),
            Tok::Ident(name) if name == self.malloc && self.peek() == Tok::LParen => {
                self.bump();
                let n = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(self.program.add_expr(ExprKind::Malloc(n), pos))
            }
            Tok::Ident(name) => Ok(self.program.add_expr(ExprKind::Ident(name), pos)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(FrontError::new(
                Phase::Parse,
                pos,
                format!(
                    "expected expression, found `{}`",
                    other.display(self.interner)
                ),
            )),
        }
    }

    /// Desugars `e++`/`++e` to `e = e + 1` (and `--` likewise), sharing
    /// `e`'s node on both sides. MiniC gives both forms the *new* value,
    /// so they should only be used where the value is discarded.
    fn desugar_incr(&mut self, e: ExprId, op: BinaryOp, pos: Pos) -> ExprId {
        let one = self.program.add_expr(ExprKind::IntLit(1), pos);
        let rhs = self.program.add_expr(ExprKind::Binary(op, e, one), pos);
        self.program.add_expr(ExprKind::Assign(e, rhs), pos)
    }
}

/// Parses a lexed token stream into `program` (cleared first).
///
/// `malloc` is the interned name `"malloc"`, which the grammar
/// special-cases as the allocation primitive.
///
/// # Errors
///
/// Returns the first syntactic error with its source position.
pub fn parse_tokens(
    toks: &[Token],
    interner: &Interner,
    malloc: Symbol,
    program: &mut Program,
    scratch: &mut ParseScratch,
) -> std::result::Result<(), FrontError> {
    program.clear();
    scratch.expr_stack.clear();
    scratch.stmt_stack.clear();
    scratch.param_stack.clear();
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
        malloc,
        program,
        scratch,
    };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::Frontend;

    fn parse(src: &str) -> std::result::Result<Frontend, FrontError> {
        let mut fe = Frontend::new();
        fe.parse(src)?;
        Ok(fe)
    }

    #[test]
    fn parses_globals_and_functions() {
        let fe = parse(
            r#"
int g = 5;
int arr[4] = {1, 2, 3, 4};
double mat[2][3];
int *ptr;

int add(int a, int b) { return a + b; }
void noop() { }
"#,
        )
        .unwrap();
        let p = fe.program();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.globals[2].ty.size_cells(), 6);
        assert_eq!(p.globals[3].ty, Type::Ptr(Box::new(Type::Int)));
        assert_eq!(fe.interner().name(p.globals[0].name), "g");
        assert_eq!(p.param_list(p.funcs[0].params).len(), 2);
        assert!(p.funcs[1].ret.is_none());
    }

    #[test]
    fn parses_statements() {
        let fe = parse(
            r#"
int main() {
  int i;
  int total = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 0) { total += i; } else { continue; }
  }
  while (total > 5) { total--; break; }
  do { total = total + 1; } while (total < 0);
  return total;
}
"#,
        )
        .unwrap();
        let p = fe.program();
        assert_eq!(p.funcs.len(), 1);
        let body = p.stmt_list(p.funcs[0].body);
        assert!(matches!(p.stmt(body[2]), Stmt::For { .. }));
    }

    #[test]
    fn precedence() {
        let fe = parse("int main() { return 1 + 2 * 3 < 7 && 1; }").unwrap();
        let p = fe.program();
        let body = p.stmt_list(p.funcs[0].body);
        let Stmt::Return { value: Some(e), .. } = p.stmt(body[0]) else {
            panic!("expected return");
        };
        // Top-level operator must be `&&`.
        assert!(matches!(
            p.expr(*e).kind,
            ExprKind::Binary(BinaryOp::LogAnd, _, _)
        ));
    }

    #[test]
    fn compound_assignment_desugars_without_cloning() {
        let fe = parse("int main() { int x; x += 2; return x; }").unwrap();
        let p = fe.program();
        let body = p.stmt_list(p.funcs[0].body);
        let Stmt::Expr(e) = p.stmt(body[1]) else {
            panic!()
        };
        let ExprKind::Assign(lhs, rhs) = p.expr(*e).kind else {
            panic!("expected assign")
        };
        assert!(matches!(p.expr(lhs).kind, ExprKind::Ident(_)));
        let ExprKind::Binary(BinaryOp::Add, a, _) = p.expr(rhs).kind else {
            panic!("expected desugared add")
        };
        // The desugared RHS reuses the lvalue's arena node, not a copy.
        assert_eq!(a, lhs);
    }

    #[test]
    fn increment_desugars_without_cloning() {
        let fe = parse("int main() { int x; x++; --x; return x; }").unwrap();
        let p = fe.program();
        let body = p.stmt_list(p.funcs[0].body);
        for stmt in &body[1..3] {
            let Stmt::Expr(e) = p.stmt(*stmt) else {
                panic!()
            };
            let ExprKind::Assign(lhs, rhs) = p.expr(*e).kind else {
                panic!("expected assign")
            };
            let ExprKind::Binary(_, a, _) = p.expr(rhs).kind else {
                panic!("expected binary")
            };
            assert_eq!(a, lhs);
        }
    }

    #[test]
    fn pointers_and_indexing() {
        let fe = parse(
            r#"
int sum(int *a, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) s = s + a[i];
  return s;
}
"#,
        )
        .unwrap();
        let p = fe.program();
        assert_eq!(
            p.param_list(p.funcs[0].params)[0].1,
            Type::Ptr(Box::new(Type::Int))
        );
    }

    #[test]
    fn array_params_decay() {
        let fe = parse("void f(int a[], int m[][3]) { }").unwrap();
        let p = fe.program();
        let params = p.param_list(p.funcs[0].params);
        assert_eq!(params[0].1, Type::Ptr(Box::new(Type::Int)));
        assert_eq!(
            params[1].1,
            Type::Ptr(Box::new(Type::Array(Box::new(Type::Int), 3)))
        );
    }

    #[test]
    fn malloc_and_addressof() {
        let fe = parse(
            r#"
int main() {
  int *p = malloc(10);
  int x = 0;
  int *q = &x;
  *q = 1;
  p[3] = *q;
  return p[3];
}
"#,
        )
        .unwrap();
        let p = fe.program();
        let body = p.stmt_list(p.funcs[0].body);
        let Stmt::Decl { init: Some(e), .. } = p.stmt(body[0]) else {
            panic!()
        };
        assert!(matches!(p.expr(*e).kind, ExprKind::Malloc(_)));
    }

    #[test]
    fn error_positions() {
        let e = parse("int main() { return 1 + ; }").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.message.contains("expected expression"));
    }

    #[test]
    fn rejects_void_global() {
        let e = parse("void g;").unwrap_err();
        assert!(e.message.contains("void"));
    }
}
