//! Raw-text source fingerprinting for incremental recompilation.
//!
//! [`source_fingerprint`] scans MiniC source *without lexing it* and
//! splits it into a **context** (everything outside function bodies:
//! global declarations, function signatures, top-level comments... the
//! text that shapes how every function lowers) and one span per
//! **function body**. The driver compares fingerprints across compiles:
//! when the context and a function's own hint are unchanged, that
//! function's canonical IR hash is provably unchanged too, so the
//! expensive post-lowering hash walk can be skipped.
//!
//! A function's hint folds in the hash of every *earlier* body as well
//! (the `prefix`), not just its own: lowering state threads through the
//! module in order — most visibly the module-global heap-site counter
//! that names `heap@N` tags — so an edit to one function may rename tags
//! in every *later* function. Under that rule the hint is sound: equal
//! hints imply byte-equal context, byte-equal earlier bodies, and a
//! byte-equal own body, which pin down the lowered (and normalized)
//! function exactly.
//!
//! The scanner is comment-aware (`//` and `/* */`; MiniC has no string
//! literals) and purely structural — it never rejects anything. On
//! malformed source it simply reports fewer functions, and the driver
//! falls back to hashing the lowered IR.

use ir::hash::{fx_mix, FxHasher};
use std::hash::Hasher;

/// One function's raw-text identity within a [`SourceFingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpan {
    /// The function's source name (the identifier before the parameter
    /// list).
    pub name: String,
    /// Digest of (context, all earlier bodies, own body) — see the
    /// module docs for why the prefix is included.
    pub hint: u64,
}

/// The raw-text shape of one source file: the context digest plus one
/// [`FuncSpan`] per function-looking `name(...) { ... }` at top level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceFingerprint {
    /// Digest of everything outside function bodies (each body
    /// contributes a fixed marker, so moving an unchanged body does
    /// change the context).
    pub context: u64,
    /// Per-function spans in source order.
    pub funcs: Vec<FuncSpan>,
}

impl SourceFingerprint {
    /// Looks up a function's hint by name (`None` if the scanner did not
    /// see it, or saw the name twice — duplicates are dropped because a
    /// hint must identify one body).
    pub fn hint(&self, name: &str) -> Option<u64> {
        let mut found = None;
        for f in &self.funcs {
            if f.name == name {
                if found.is_some() {
                    return None;
                }
                found = Some(f.hint);
            }
        }
        found
    }
}

/// Skips a comment starting at `i` (if any), returning the next index.
fn skip_comment(bytes: &[u8], i: usize) -> Option<usize> {
    if bytes[i] != b'/' || i + 1 >= bytes.len() {
        return None;
    }
    match bytes[i + 1] {
        b'/' => {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            Some(j)
        }
        b'*' => {
            let mut j = i + 2;
            while j + 1 < bytes.len() {
                if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                    return Some(j + 2);
                }
                j += 1;
            }
            Some(bytes.len())
        }
        _ => None,
    }
}

/// Scans MiniC source into its incremental fingerprint. Deterministic,
/// allocation-light, and never fails: structure the scanner cannot
/// follow is folded into the context digest, which only ever makes the
/// result more conservative.
pub fn source_fingerprint(src: &str) -> SourceFingerprint {
    let bytes = src.as_bytes();
    let mut context = FxHasher::new();
    let mut funcs: Vec<FuncSpan> = Vec::new();
    let mut raw_hints: Vec<(String, u64)> = Vec::new();
    let mut prefix: u64 = 0;
    let mut i = 0;
    // The last identifier completed at top level (candidate function
    // name when a `(` follows).
    let mut last_ident: Option<(usize, usize)> = None;
    while i < bytes.len() {
        if let Some(j) = skip_comment(bytes, i) {
            // Comments are context: editing one must not look like a
            // body edit, but the compare stays byte-honest about text
            // outside bodies.
            context.write(&bytes[i..j]);
            i = j;
            continue;
        }
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            last_ident = Some((start, i));
            context.write(&bytes[start..i]);
            continue;
        }
        if c == b'(' {
            if let Some((ns, ne)) = last_ident {
                if let Some((body_start, body_end, after)) = match_header_and_body(bytes, i) {
                    // Header (params) is context; the body is a span.
                    context.write(&bytes[i..body_start]);
                    context.write_u8(0x1B); // body marker
                    let body = ir::hash::fx_hash_bytes(&bytes[body_start..body_end]);
                    prefix = fx_mix(prefix, body);
                    let name = String::from_utf8_lossy(&bytes[ns..ne]).into_owned();
                    raw_hints.push((name, prefix));
                    last_ident = None;
                    i = after;
                    continue;
                }
            }
        }
        context.write_u8(c);
        i += 1;
    }
    let context = context.finish();
    for (name, prefix) in raw_hints {
        if funcs.iter().any(|f| f.name == name) {
            // Duplicate names cannot be disambiguated from raw text;
            // keep both entries so `hint()` reports the ambiguity.
            funcs.push(FuncSpan { name, hint: 0 });
            continue;
        }
        funcs.push(FuncSpan {
            name,
            hint: fx_mix(context, prefix),
        });
    }
    SourceFingerprint { context, funcs }
}

/// From an opening `(` at `open`, finds the matching `)` and — if the
/// next meaningful token is `{` — the body's `{`..`}` span. Returns
/// `(body_start, body_end_exclusive, resume_index)`.
fn match_header_and_body(bytes: &[u8], open: usize) -> Option<(usize, usize, usize)> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if let Some(j) = skip_comment(bytes, i) {
            i = j;
            continue;
        }
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if depth != 0 {
        return None;
    }
    // Skip whitespace/comments to the body's `{`.
    while i < bytes.len() {
        if let Some(j) = skip_comment(bytes, i) {
            i = j;
            continue;
        }
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        break;
    }
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    let body_start = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        if let Some(j) = skip_comment(bytes, i) {
            i = j;
            continue;
        }
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((body_start, i + 1, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
int g = 3;
int helper(int x) { return x + g; }
int main() {
    print_int(helper(4));
    return 0;
}
";

    #[test]
    fn finds_functions_and_is_deterministic() {
        let fp = source_fingerprint(SRC);
        let names: Vec<&str> = fp.funcs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "main"]);
        assert_eq!(fp, source_fingerprint(SRC));
    }

    #[test]
    fn body_edit_changes_own_and_later_hints_only() {
        let a = source_fingerprint(SRC);
        let b = source_fingerprint(&SRC.replace("x + g", "x * g"));
        assert_eq!(a.context, b.context);
        assert_ne!(a.hint("helper"), b.hint("helper"));
        // `main` follows the edited body, so its prefix moved too.
        assert_ne!(a.hint("main"), b.hint("main"));
    }

    #[test]
    fn later_edit_leaves_earlier_hints_alone() {
        let a = source_fingerprint(SRC);
        let b = source_fingerprint(&SRC.replace("return 0;", "return 1;"));
        assert_eq!(a.context, b.context);
        assert_eq!(a.hint("helper"), b.hint("helper"));
        assert_ne!(a.hint("main"), b.hint("main"));
    }

    #[test]
    fn context_edit_changes_context() {
        let a = source_fingerprint(SRC);
        let b = source_fingerprint(&SRC.replace("int g = 3;", "int g = 4;"));
        assert_ne!(a.context, b.context);
    }

    #[test]
    fn comments_and_calls_do_not_confuse_the_scanner() {
        let src = "\
// top comment with braces { } and parens ( )
int /* inline */ f(int a) { if (a) { return 1; } return 2; }
int main() { return f(0); }
";
        let fp = source_fingerprint(src);
        let names: Vec<&str> = fp.funcs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "main"]);
    }

    #[test]
    fn duplicate_names_yield_no_hint() {
        let src = "int f() { return 1; }\nint f() { return 2; }\n";
        let fp = source_fingerprint(src);
        assert_eq!(fp.hint("f"), None);
    }
}
