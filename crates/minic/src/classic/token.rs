//! Tokens of the baseline front end: identifiers own their `String`.

pub use crate::token::Pos;
use std::fmt;

/// The kinds of MiniC tokens (baseline, `String`-owning form).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `int`
    KwInt,
    /// `double`
    KwDouble,
    /// `void`
    KwVoid,
    /// `func` (function-pointer type)
    KwFunc,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `do`
    KwDo,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of input.
    Eof,
}

impl Tok {
    /// Resolves keywords, returning `None` for ordinary identifiers.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word {
            "int" => Tok::KwInt,
            "double" => Tok::KwDouble,
            "void" => Tok::KwVoid,
            "func" => Tok::KwFunc,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            _ => return None,
        })
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwDouble => write!(f, "double"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwFunc => write!(f, "func"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwDo => write!(f, "do"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Assign => write!(f, "="),
            Tok::PlusAssign => write!(f, "+="),
            Tok::MinusAssign => write!(f, "-="),
            Tok::StarAssign => write!(f, "*="),
            Tok::SlashAssign => write!(f, "/="),
            Tok::PercentAssign => write!(f, "%="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Caret => write!(f, "^"),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::PlusPlus => write!(f, "++"),
            Tok::MinusMinus => write!(f, "--"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Its source position.
    pub pos: Pos,
}
