//! The pre-interning MiniC front end, preserved as a baseline.
//!
//! This is the front end as it stood before symbols, spans, and arena
//! pools: tokens own `String` identifiers, the AST is `Box`-based, and
//! every compile allocates its world from scratch. It exists for two
//! reasons:
//!
//! 1. **Honest baselines.** `bench_pipeline --fresh-frontend` and the
//!    `frontend_alloc_stats_fresh` block measure this path, so the
//!    warm-vs-fresh allocation ratio compares against real historical
//!    behavior rather than a synthetic strawman (the same methodology as
//!    the `--no-scratch` pass baseline).
//! 2. **Differential testing.** The interned front end must produce
//!    byte-identical printed IL to this one for every program; the
//!    `frontend_differential` test enforces that across the benchmark
//!    suite.
//!
//! The module shares [`crate::error::FrontError`] and [`crate::token::Pos`]
//! with the live front end so results compare directly. It receives no new
//! features — it is a fixed reference point.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use lexer::lex;
pub use lower::compile;
pub use parser::parse;
