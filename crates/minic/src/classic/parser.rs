//! The baseline recursive-descent parser: owns its token vector, clones
//! tokens on peek, and builds the `Box`-based AST (including the lvalue
//! clone in compound-assignment and `++`/`--` desugaring).

use crate::classic::ast::*;
use crate::classic::lexer::lex;
use crate::classic::token::{Tok, Token};
use crate::error::{FrontError, Phase};
use crate::token::Pos;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

type Result<T> = std::result::Result<T, FrontError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(FrontError::new(Phase::Parse, self.here(), message))
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek()))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    /// True if the current token begins a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwDouble | Tok::KwFunc | Tok::KwVoid
        )
    }

    /// Parses a base type plus pointer stars. Returns `None` for `void`.
    fn parse_type(&mut self) -> Result<Option<Type>> {
        let base = match self.bump() {
            Tok::KwInt => Some(Type::Int),
            Tok::KwDouble => Some(Type::Double),
            Tok::KwFunc => Some(Type::Func),
            Tok::KwVoid => None,
            other => return self.err(format!("expected type, found `{other}`")),
        };
        let mut ty = base;
        while self.eat(Tok::Star) {
            match ty {
                Some(t) => ty = Some(Type::Ptr(Box::new(t))),
                None => return self.err("pointer to void is not supported"),
            }
        }
        Ok(ty)
    }

    /// Parses `[N][M]...` dimensions onto `ty` (innermost dimension last).
    fn parse_dims(&mut self, mut ty: Type) -> Result<Type> {
        let mut dims = Vec::new();
        while self.eat(Tok::LBracket) {
            match self.bump() {
                Tok::Int(n) if n > 0 => dims.push(n as usize),
                other => return self.err(format!("expected array size, found `{other}`")),
            }
            self.expect(Tok::RBracket)?;
        }
        for &n in dims.iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        while *self.peek() != Tok::Eof {
            let pos = self.here();
            if !self.at_type() {
                return self.err(format!("expected a declaration, found `{}`", self.peek()));
            }
            let ty = self.parse_type()?;
            let name = self.ident()?;
            if *self.peek() == Tok::LParen {
                program.funcs.push(self.parse_func(ty, name, pos)?);
            } else {
                let ty = ty.ok_or_else(|| {
                    FrontError::new(Phase::Parse, pos, "global variables cannot be void")
                })?;
                program.globals.push(self.parse_global(ty, name, pos)?);
            }
        }
        Ok(program)
    }

    fn parse_global(&mut self, ty: Type, name: String, pos: Pos) -> Result<GlobalDecl> {
        let ty = self.parse_dims(ty)?;
        let init = if self.eat(Tok::Assign) {
            if self.eat(Tok::LBrace) {
                let mut items = Vec::new();
                loop {
                    items.push(self.parse_expr()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Some(GlobalInitAst::List(items))
            } else {
                Some(GlobalInitAst::Scalar(self.parse_expr()?))
            }
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            pos,
        })
    }

    fn parse_func(&mut self, ret: Option<Type>, name: String, pos: Pos) -> Result<FuncDecl> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            // `void` alone means no parameters.
            if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
                self.bump();
                self.expect(Tok::RParen)?;
            } else {
                loop {
                    let pty = self.parse_type()?.ok_or_else(|| {
                        FrontError::new(Phase::Parse, self.here(), "void parameter")
                    })?;
                    let pname = self.ident()?;
                    // Array parameters decay to pointers: `int a[]`,
                    // `int m[][20]`.
                    let mut pty = pty;
                    if *self.peek() == Tok::LBracket {
                        self.bump();
                        // Optional first dimension is ignored.
                        if let Tok::Int(_) = self.peek() {
                            self.bump();
                        }
                        self.expect(Tok::RBracket)?;
                        let inner = self.parse_dims(pty)?;
                        pty = Type::Ptr(Box::new(inner));
                    }
                    params.push((pname, pty));
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
        }
        self.expect(Tok::LBrace)?;
        let body = self.parse_block_body()?;
        Ok(FuncDecl {
            name,
            ret,
            params,
            body,
            pos,
        })
    }

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::KwInt | Tok::KwDouble | Tok::KwFunc => {
                let ty = self.parse_type()?.expect("non-void here");
                let name = self.ident()?;
                let ty = self.parse_dims(ty)?;
                let init = if self.eat(Tok::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Decl {
                    name,
                    ty,
                    init,
                    pos,
                })
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.parse_stmt_as_block()?;
                let else_body = if self.eat(Tok::KwElse) {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwDo => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else if self.at_type() {
                    // C99-style `for (int i = 0; ...)`.
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat(Tok::LBrace) {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr> {
        let lhs = self.parse_binary(0)?;
        let pos = self.here();
        let compound = |op: BinaryOp| Some(op);
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => compound(BinaryOp::Add),
            Tok::MinusAssign => compound(BinaryOp::Sub),
            Tok::StarAssign => compound(BinaryOp::Mul),
            Tok::SlashAssign => compound(BinaryOp::Div),
            Tok::PercentAssign => compound(BinaryOp::Rem),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?;
        let rhs = match op {
            None => rhs,
            Some(op) => Expr {
                kind: ExprKind::Binary(op, Box::new(lhs.clone()), Box::new(rhs)),
                pos,
            },
        };
        Ok(Expr {
            kind: ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
            pos,
        })
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinaryOp::LogOr, 1),
                Tok::AndAnd => (BinaryOp::LogAnd, 2),
                Tok::Pipe => (BinaryOp::BitOr, 3),
                Tok::Caret => (BinaryOp::BitXor, 4),
                Tok::Amp => (BinaryOp::BitAnd, 5),
                Tok::EqEq => (BinaryOp::Eq, 6),
                Tok::NotEq => (BinaryOp::Ne, 6),
                Tok::Lt => (BinaryOp::Lt, 7),
                Tok::Le => (BinaryOp::Le, 7),
                Tok::Gt => (BinaryOp::Gt, 7),
                Tok::Ge => (BinaryOp::Ge, 7),
                Tok::Shl => (BinaryOp::Shl, 8),
                Tok::Shr => (BinaryOp::Shr, 8),
                Tok::Plus => (BinaryOp::Add, 9),
                Tok::Minus => (BinaryOp::Sub, 9),
                Tok::Star => (BinaryOp::Mul, 10),
                Tok::Slash => (BinaryOp::Div, 10),
                Tok::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let pos = self.here();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnaryOp::Neg, Box::new(e)),
                    pos,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnaryOp::Not, Box::new(e)),
                    pos,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Deref(Box::new(e)),
                    pos,
                })
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::AddrOf(Box::new(e)),
                    pos,
                })
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let op = if self.bump() == Tok::PlusPlus {
                    BinaryOp::Add
                } else {
                    BinaryOp::Sub
                };
                let e = self.parse_unary()?;
                Ok(desugar_incr(e, op, pos))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let pos = self.here();
            match self.peek().clone() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        pos,
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    e = Expr {
                        kind: ExprKind::Call(Box::new(e), args),
                        pos,
                    };
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = desugar_incr(e, BinaryOp::Add, pos);
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = desugar_incr(e, BinaryOp::Sub, pos);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let pos = self.here();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::IntLit(v),
                pos,
            }),
            Tok::Float(v) => Ok(Expr {
                kind: ExprKind::FloatLit(v),
                pos,
            }),
            Tok::Ident(name) if name == "malloc" && *self.peek() == Tok::LParen => {
                self.bump();
                let n = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr {
                    kind: ExprKind::Malloc(Box::new(n)),
                    pos,
                })
            }
            Tok::Ident(name) => Ok(Expr {
                kind: ExprKind::Ident(name),
                pos,
            }),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(FrontError::new(
                Phase::Parse,
                pos,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

/// Desugars `e++`/`++e` to `e = e + 1` (and `--` likewise). MiniC gives
/// both forms the *new* value, so they should only be used where the value
/// is discarded.
fn desugar_incr(e: Expr, op: BinaryOp, pos: Pos) -> Expr {
    let one = Expr {
        kind: ExprKind::IntLit(1),
        pos,
    };
    let rhs = Expr {
        kind: ExprKind::Binary(op, Box::new(e.clone()), Box::new(one)),
        pos,
    };
    Expr {
        kind: ExprKind::Assign(Box::new(e), Box::new(rhs)),
        pos,
    }
}

/// Parses a MiniC translation unit with the baseline front end.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source position.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}
