//! The baseline `Box`-based MiniC AST.
//!
//! Types and operators are shared with the live front end (they are
//! identical value enums); only the tree node representation differs —
//! every child is a heap allocation here, versus pooled ids in
//! [`crate::ast`].

pub use crate::ast::{BinaryOp, Type, UnaryOp};
use crate::token::Pos;

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable or function name.
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (compound assignments are desugared by the
    /// parser).
    Assign(Box<Expr>, Box<Expr>),
    /// Call; the callee is an expression (an identifier naming a function
    /// or intrinsic, or a `func`-typed variable).
    Call(Box<Expr>, Vec<Expr>),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e` (of an identifier or an index expression).
    AddrOf(Box<Expr>),
    /// Heap allocation `malloc(n)` of `n` cells.
    Malloc(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the surface syntax
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
        pos: Pos,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while` loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// `do { } while (cond);` loop.
    DoWhile { body: Vec<Stmt>, cond: Expr },
    /// `for` loop; all three headers optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return { value: Option<Expr>, pos: Pos },
    /// `break`.
    Break(Pos),
    /// `continue`.
    Continue(Pos),
    /// Nested block.
    Block(Vec<Stmt>),
}

/// Initializer for a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInitAst {
    /// A single number.
    Scalar(Expr),
    /// `{ a, b, c }` for arrays.
    List(Vec<Expr>),
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (literals only).
    pub init: Option<GlobalInitAst>,
    /// Position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Return type; `None` = `void`.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions, in declaration order.
    pub funcs: Vec<FuncDecl>,
}
