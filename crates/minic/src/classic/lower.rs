//! The baseline lowering pass: `String`-keyed scope maps and fresh
//! `HashMap`/`HashSet` tables per compile. The storage-decision logic is
//! identical to the live lowering pass; only the data representation
//! differs.

use crate::classic::ast::*;
use crate::error::{FrontError, Phase};
use crate::token::Pos;
use ir::{
    BinOp, CmpOp, FuncId, FunctionBuilder, GlobalInit, Instr, Intrinsic, Module, Reg, TagId,
    TagKind, TagSet, UnaryOp as IrUnary,
};
use std::collections::{HashMap, HashSet};

type Result<T> = std::result::Result<T, FrontError>;

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T> {
    Err(FrontError::new(Phase::Sema, pos, message))
}

/// Where a variable lives.
#[derive(Debug, Clone)]
enum Place {
    /// In a virtual register (unaliased scalars).
    Reg(Reg),
    /// In tagged memory (globals, arrays, address-taken variables).
    Mem(TagId),
}

#[derive(Debug, Clone)]
struct VarInfo {
    ty: Type,
    place: Place,
}

/// An evaluated lvalue.
enum LValue {
    Reg(Reg, Type),
    Scalar(TagId, Type),
    Cell { addr: Reg, tags: TagSet, ty: Type },
}

impl LValue {
    fn ty(&self) -> &Type {
        match self {
            LValue::Reg(_, t) | LValue::Scalar(_, t) => t,
            LValue::Cell { ty, .. } => ty,
        }
    }
}

/// Scans a function body for identifiers whose address is taken with `&`.
fn collect_addressed(body: &[Stmt], out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::AddrOf(inner) => {
                // `&x` forces x into memory; `&a[i]` forces a into memory
                // (arrays are already there).
                let mut base = inner;
                while let ExprKind::Index(b, i) = &base.kind {
                    expr(i, out);
                    base = b;
                }
                if let ExprKind::Ident(name) = &base.kind {
                    out.insert(name.clone());
                } else {
                    expr(base, out);
                }
            }
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::Malloc(a) => expr(a, out),
            ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            ExprKind::Call(f, args) => {
                expr(f, out);
                for a in args {
                    expr(a, out);
                }
            }
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Ident(_) => {}
        }
    }
    fn stmt(s: &Stmt, out: &mut HashSet<String>) {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    expr(e, out);
                }
            }
            Stmt::Expr(e) => expr(e, out),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, out);
                for s in then_body.iter().chain(else_body) {
                    stmt(s, out);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                expr(cond, out);
                for s in body {
                    stmt(s, out);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    stmt(s, out);
                }
                if let Some(e) = cond {
                    expr(e, out);
                }
                if let Some(e) = step {
                    expr(e, out);
                }
                for s in body {
                    stmt(s, out);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    expr(e, out);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(body) => {
                for s in body {
                    stmt(s, out);
                }
            }
        }
    }
    for s in body {
        stmt(s, out);
    }
}

struct Lowerer<'p> {
    program: &'p Program,
    module: Module,
    /// Function name -> (id, signature).
    func_sigs: HashMap<String, (FuncId, Option<Type>, Vec<Type>)>,
    /// Global name -> (tag, type).
    global_vars: HashMap<String, (TagId, Type)>,
    heap_sites: u32,
}

struct FuncCtx {
    b: FunctionBuilder,
    func_index: u32,
    func_name: String,
    ret: Option<Type>,
    scopes: Vec<HashMap<String, VarInfo>>,
    addressed: HashSet<String>,
    /// (break target, continue target) stack.
    loop_stack: Vec<(ir::BlockId, ir::BlockId)>,
    local_tag_counter: u32,
}

impl FuncCtx {
    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

impl<'p> Lowerer<'p> {
    fn run(program: &'p Program) -> Result<Module> {
        let mut l = Lowerer {
            program,
            module: Module::new(),
            func_sigs: HashMap::new(),
            global_vars: HashMap::new(),
            heap_sites: 0,
        };
        l.declare_globals()?;
        l.declare_functions()?;
        for f in &program.funcs {
            l.lower_function(f)?;
        }
        Ok(l.module)
    }

    fn declare_globals(&mut self) -> Result<()> {
        for g in &self.program.globals {
            if self.global_vars.contains_key(&g.name) {
                return err(g.pos, format!("duplicate global `{}`", g.name));
            }
            let size = g.ty.size_cells();
            let init = match (&g.init, &g.ty) {
                (None, _) => GlobalInit::Zero,
                (Some(GlobalInitAst::Scalar(e)), ty) if ty.is_scalar() => match (&e.kind, ty) {
                    (ExprKind::IntLit(v), Type::Int) => GlobalInit::Ints(vec![*v]),
                    (ExprKind::IntLit(v), Type::Double) => GlobalInit::Floats(vec![*v as f64]),
                    (ExprKind::FloatLit(v), Type::Double) => GlobalInit::Floats(vec![*v]),
                    (ExprKind::Unary(UnaryOp::Neg, inner), _) => match (&inner.kind, ty) {
                        (ExprKind::IntLit(v), Type::Int) => GlobalInit::Ints(vec![-*v]),
                        (ExprKind::IntLit(v), Type::Double) => {
                            GlobalInit::Floats(vec![-(*v as f64)])
                        }
                        (ExprKind::FloatLit(v), Type::Double) => GlobalInit::Floats(vec![-*v]),
                        _ => return err(e.pos, "global initializers must be literals"),
                    },
                    _ => return err(e.pos, "global initializers must be literals"),
                },
                (Some(GlobalInitAst::List(items)), Type::Array(elem, _)) => {
                    let leaf = {
                        let mut t: &Type = elem;
                        while let Type::Array(inner, _) = t {
                            t = inner;
                        }
                        t.clone()
                    };
                    let mut ints = Vec::new();
                    let mut floats = Vec::new();
                    for item in items {
                        match (&item.kind, &leaf) {
                            (ExprKind::IntLit(v), Type::Int) => ints.push(*v),
                            (ExprKind::IntLit(v), Type::Double) => floats.push(*v as f64),
                            (ExprKind::FloatLit(v), Type::Double) => floats.push(*v),
                            _ => {
                                return err(
                                    item.pos,
                                    "array initializers must be literals of the element type",
                                )
                            }
                        }
                    }
                    if ints.len().max(floats.len()) > size {
                        return err(g.pos, "too many initializers");
                    }
                    if matches!(leaf, Type::Int) {
                        GlobalInit::Ints(ints)
                    } else {
                        GlobalInit::Floats(floats)
                    }
                }
                (Some(_), _) => return err(g.pos, "initializer does not match type"),
            };
            // Double globals default to float zero cells.
            let init = match (&init, &g.ty) {
                (GlobalInit::Zero, Type::Double) => GlobalInit::Floats(vec![0.0]),
                (GlobalInit::Zero, Type::Array(elem, _)) => {
                    let mut t: &Type = elem;
                    while let Type::Array(inner, _) = t {
                        t = inner;
                    }
                    if matches!(t, Type::Double) {
                        GlobalInit::Floats(vec![])
                    } else {
                        GlobalInit::Zero
                    }
                }
                _ => init,
            };
            let tag = self.module.add_global(&g.name, size, init);
            self.global_vars.insert(g.name.clone(), (tag, g.ty.clone()));
        }
        Ok(())
    }

    fn declare_functions(&mut self) -> Result<()> {
        for (i, f) in self.program.funcs.iter().enumerate() {
            if self.func_sigs.contains_key(&f.name) {
                return err(f.pos, format!("duplicate function `{}`", f.name));
            }
            if Intrinsic::from_name(&f.name).is_some() || f.name == "malloc" {
                return err(
                    f.pos,
                    format!("`{}` is a builtin and cannot be redefined", f.name),
                );
            }
            let params: Vec<Type> = f.params.iter().map(|(_, t)| t.clone()).collect();
            self.func_sigs
                .insert(f.name.clone(), (FuncId(i as u32), f.ret.clone(), params));
        }
        Ok(())
    }

    fn lower_function(&mut self, f: &FuncDecl) -> Result<()> {
        let func_index = self.func_sigs[&f.name].0 .0;
        let mut b = FunctionBuilder::new(f.name.clone(), f.params.len());
        if f.ret.is_some() {
            b.returns_value();
        }
        let mut addressed = HashSet::new();
        collect_addressed(&f.body, &mut addressed);
        let mut ctx = FuncCtx {
            b,
            func_index,
            func_name: f.name.clone(),
            ret: f.ret.clone(),
            scopes: vec![HashMap::new()],
            addressed,
            loop_stack: Vec::new(),
            local_tag_counter: 0,
        };
        // Bind parameters.
        for (i, (name, ty)) in f.params.iter().enumerate() {
            if !ty.is_scalar() {
                return err(
                    f.pos,
                    format!("parameter `{name}` has array type; use a pointer"),
                );
            }
            let incoming = Reg(i as u32);
            let place = if ctx.addressed.contains(name) {
                let tag = self.new_local_tag(&mut ctx, name, 1, true);
                ctx.b.sstore(incoming, tag);
                Place::Mem(tag)
            } else {
                Place::Reg(incoming)
            };
            ctx.scopes.last_mut().expect("scope").insert(
                name.clone(),
                VarInfo {
                    ty: ty.clone(),
                    place,
                },
            );
        }
        self.lower_block(&mut ctx, &f.body)?;
        // Implicit return if control can fall off the end.
        if !ctx.b.is_terminated() {
            match &ctx.ret {
                None => ctx.b.ret(None),
                Some(Type::Double) => {
                    let z = ctx.b.fconst(0.0);
                    ctx.b.ret(Some(z));
                }
                Some(_) => {
                    let z = ctx.b.iconst(0);
                    ctx.b.ret(Some(z));
                }
            }
        }
        self.module.add_func(ctx.b.finish());
        Ok(())
    }

    fn new_local_tag(&mut self, ctx: &mut FuncCtx, name: &str, size: usize, param: bool) -> TagId {
        // Unique tag name even with shadowed declarations.
        let base = format!("{}.{}", ctx.func_name, name);
        let unique = if self.module.tags.lookup(&base).is_none() {
            base
        } else {
            ctx.local_tag_counter += 1;
            format!("{}.{}", base, ctx.local_tag_counter)
        };
        let kind = if param {
            TagKind::Param {
                owner: ctx.func_index,
            }
        } else {
            TagKind::Local {
                owner: ctx.func_index,
            }
        };
        self.module.tags.intern(unique, kind, size)
    }

    fn lower_block(&mut self, ctx: &mut FuncCtx, body: &[Stmt]) -> Result<()> {
        ctx.scopes.push(HashMap::new());
        for s in body {
            self.lower_stmt(ctx, s)?;
        }
        ctx.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, ctx: &mut FuncCtx, s: &Stmt) -> Result<()> {
        // Statements after a terminator are unreachable; park them in a
        // fresh block which `remove_unreachable_blocks` deletes later.
        if ctx.b.is_terminated() {
            let limbo = ctx.b.new_block();
            ctx.b.switch_to(limbo);
        }
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                pos,
            } => {
                let needs_memory = !ty.is_scalar() || ctx.addressed.contains(name);
                let place = if needs_memory {
                    let tag = self.new_local_tag(ctx, name, ty.size_cells(), false);
                    Place::Mem(tag)
                } else {
                    Place::Reg(ctx.b.new_reg())
                };
                let info = VarInfo {
                    ty: ty.clone(),
                    place,
                };
                if let Some(e) = init {
                    if !ty.is_scalar() {
                        return err(*pos, "array locals cannot have initializers");
                    }
                    let (r, rty) = self.lower_expr(ctx, e)?;
                    let r = self.convert(ctx, r, &rty, ty, e.pos)?;
                    match &info.place {
                        Place::Reg(dst) => ctx.b.emit(Instr::Copy { dst: *dst, src: r }),
                        Place::Mem(tag) => ctx.b.sstore(r, *tag),
                    }
                }
                ctx.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), info);
            }
            Stmt::Expr(e) => {
                self.lower_expr_maybe_void(ctx, e)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.lower_condition(ctx, cond)?;
                let then_bb = ctx.b.new_block();
                let else_bb = ctx.b.new_block();
                let join = ctx.b.new_block();
                ctx.b.branch(c, then_bb, else_bb);
                ctx.b.switch_to(then_bb);
                self.lower_block(ctx, then_body)?;
                if !ctx.b.is_terminated() {
                    ctx.b.jump(join);
                }
                ctx.b.switch_to(else_bb);
                self.lower_block(ctx, else_body)?;
                if !ctx.b.is_terminated() {
                    ctx.b.jump(join);
                }
                ctx.b.switch_to(join);
            }
            Stmt::While { cond, body } => {
                let header = ctx.b.new_block();
                let body_bb = ctx.b.new_block();
                let exit = ctx.b.new_block();
                ctx.b.jump(header);
                ctx.b.switch_to(header);
                let c = self.lower_condition(ctx, cond)?;
                ctx.b.branch(c, body_bb, exit);
                ctx.b.switch_to(body_bb);
                ctx.loop_stack.push((exit, header));
                self.lower_block(ctx, body)?;
                ctx.loop_stack.pop();
                if !ctx.b.is_terminated() {
                    ctx.b.jump(header);
                }
                ctx.b.switch_to(exit);
            }
            Stmt::DoWhile { body, cond } => {
                let body_bb = ctx.b.new_block();
                let latch = ctx.b.new_block();
                let exit = ctx.b.new_block();
                ctx.b.jump(body_bb);
                ctx.b.switch_to(body_bb);
                ctx.loop_stack.push((exit, latch));
                self.lower_block(ctx, body)?;
                ctx.loop_stack.pop();
                if !ctx.b.is_terminated() {
                    ctx.b.jump(latch);
                }
                ctx.b.switch_to(latch);
                let c = self.lower_condition(ctx, cond)?;
                ctx.b.branch(c, body_bb, exit);
                ctx.b.switch_to(exit);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                ctx.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.lower_stmt(ctx, s)?;
                }
                let header = ctx.b.new_block();
                let body_bb = ctx.b.new_block();
                let step_bb = ctx.b.new_block();
                let exit = ctx.b.new_block();
                ctx.b.jump(header);
                ctx.b.switch_to(header);
                match cond {
                    Some(c) => {
                        let r = self.lower_condition(ctx, c)?;
                        ctx.b.branch(r, body_bb, exit);
                    }
                    None => ctx.b.jump(body_bb),
                }
                ctx.b.switch_to(body_bb);
                ctx.loop_stack.push((exit, step_bb));
                self.lower_block(ctx, body)?;
                ctx.loop_stack.pop();
                if !ctx.b.is_terminated() {
                    ctx.b.jump(step_bb);
                }
                ctx.b.switch_to(step_bb);
                if let Some(e) = step {
                    self.lower_expr_maybe_void(ctx, e)?;
                }
                ctx.b.jump(header);
                ctx.b.switch_to(exit);
                ctx.scopes.pop();
            }
            Stmt::Return { value, pos } => match (&ctx.ret, value) {
                (None, None) => ctx.b.ret(None),
                (None, Some(_)) => return err(*pos, "void function returns a value"),
                (Some(_), None) => return err(*pos, "non-void function returns no value"),
                (Some(rt), Some(e)) => {
                    let rt = rt.clone();
                    let (r, ty) = self.lower_expr(ctx, e)?;
                    let r = self.convert(ctx, r, &ty, &rt, e.pos)?;
                    ctx.b.ret(Some(r));
                }
            },
            Stmt::Break(pos) => match ctx.loop_stack.last() {
                Some(&(brk, _)) => ctx.b.jump(brk),
                None => return err(*pos, "break outside a loop"),
            },
            Stmt::Continue(pos) => match ctx.loop_stack.last() {
                Some(&(_, cont)) => ctx.b.jump(cont),
                None => return err(*pos, "continue outside a loop"),
            },
            Stmt::Block(body) => self.lower_block(ctx, body)?,
        }
        Ok(())
    }

    /// Lowers an expression used only as a condition; the result is an int.
    fn lower_condition(&mut self, ctx: &mut FuncCtx, e: &Expr) -> Result<Reg> {
        let (r, ty) = self.lower_expr(ctx, e)?;
        match ty {
            Type::Int => Ok(r),
            // Non-int conditions compare against zero.
            Type::Double => {
                let z = ctx.b.fconst(0.0);
                Ok(ctx.b.cmp(CmpOp::Ne, r, z))
            }
            Type::Ptr(_) | Type::Func => {
                let z = ctx.b.iconst(0);
                Ok(ctx.b.cmp(CmpOp::Ne, r, z))
            }
            Type::Array(..) => err(e.pos, "array used as a condition"),
        }
    }

    /// Lowers an expression statement, permitting void calls.
    fn lower_expr_maybe_void(&mut self, ctx: &mut FuncCtx, e: &Expr) -> Result<()> {
        if let ExprKind::Call(callee, args) = &e.kind {
            self.lower_call(ctx, callee, args, e.pos, true)?;
            Ok(())
        } else {
            self.lower_expr(ctx, e).map(|_| ())
        }
    }

    /// Lowers an rvalue. Arrays decay to pointers.
    fn lower_expr(&mut self, ctx: &mut FuncCtx, e: &Expr) -> Result<(Reg, Type)> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((ctx.b.iconst(*v), Type::Int)),
            ExprKind::FloatLit(v) => Ok((ctx.b.fconst(*v), Type::Double)),
            ExprKind::Ident(name) => {
                if let Some(info) = ctx.lookup(name).cloned() {
                    return self.read_place(ctx, &info, e.pos);
                }
                if let Some((tag, ty)) = self.global_vars.get(name).cloned() {
                    let info = VarInfo {
                        ty,
                        place: Place::Mem(tag),
                    };
                    return self.read_place(ctx, &info, e.pos);
                }
                if let Some(&(fid, _, _)) = self.func_sigs.get(name) {
                    // A bare function name is a function pointer.
                    return Ok((ctx.b.func_addr(fid), Type::Func));
                }
                err(e.pos, format!("unknown identifier `{name}`"))
            }
            ExprKind::Unary(UnaryOp::Neg, inner) => {
                let (r, ty) = self.lower_expr(ctx, inner)?;
                if !ty.is_arith() {
                    return err(e.pos, format!("cannot negate `{ty}`"));
                }
                Ok((ctx.b.unary(IrUnary::Neg, r), ty))
            }
            ExprKind::Unary(UnaryOp::Not, inner) => {
                let r = self.lower_condition(ctx, inner)?;
                Ok((ctx.b.unary(IrUnary::Not, r), Type::Int))
            }
            ExprKind::Binary(op, a, bx) => self.lower_binary(ctx, *op, a, bx, e.pos),
            ExprKind::Assign(lhs, rhs) => {
                let lv = self.lower_lvalue(ctx, lhs)?;
                let (r, rty) = self.lower_expr(ctx, rhs)?;
                let target_ty = lv.ty().clone();
                let r = self.convert(ctx, r, &rty, &target_ty, rhs.pos)?;
                match lv {
                    LValue::Reg(dst, _) => ctx.b.emit(Instr::Copy { dst, src: r }),
                    LValue::Scalar(tag, _) => ctx.b.sstore(r, tag),
                    LValue::Cell { addr, tags, .. } => ctx.b.store(r, addr, tags),
                }
                Ok((r, target_ty))
            }
            ExprKind::Call(callee, args) => {
                match self.lower_call(ctx, callee, args, e.pos, false)? {
                    Some(rt) => Ok(rt),
                    None => err(e.pos, "void call used as a value"),
                }
            }
            ExprKind::Index(..) | ExprKind::Deref(_) => {
                let lv = self.lower_lvalue(ctx, e)?;
                self.read_lvalue(ctx, lv, e.pos)
            }
            ExprKind::AddrOf(inner) => {
                // `&f` for a function yields a function pointer.
                if let ExprKind::Ident(name) = &inner.kind {
                    if ctx.lookup(name).is_none() && !self.global_vars.contains_key(name) {
                        if let Some(&(fid, _, _)) = self.func_sigs.get(name) {
                            return Ok((ctx.b.func_addr(fid), Type::Func));
                        }
                    }
                }
                let (addr, pointee) = self.lower_addr(ctx, inner)?;
                Ok((addr, Type::Ptr(Box::new(pointee))))
            }
            ExprKind::Malloc(n) => {
                let (r, ty) = self.lower_expr(ctx, n)?;
                if ty != Type::Int {
                    return err(n.pos, "malloc size must be int");
                }
                let site = self.heap_sites;
                self.heap_sites += 1;
                let tag =
                    self.module
                        .tags
                        .intern(format!("heap@{site}"), TagKind::Heap { site }, 1);
                // `Ptr(Int)` is the generic heap pointer; assignment allows
                // any pointer-to-pointer conversion.
                Ok((ctx.b.alloc(r, tag), Type::Ptr(Box::new(Type::Int))))
            }
        }
    }

    fn read_place(&mut self, ctx: &mut FuncCtx, info: &VarInfo, pos: Pos) -> Result<(Reg, Type)> {
        match (&info.place, &info.ty) {
            // Arrays decay to a pointer to their first element.
            (Place::Mem(tag), Type::Array(elem, _)) => {
                self.module.tags.mark_address_taken(*tag);
                Ok((ctx.b.lea(*tag), Type::Ptr(elem.clone())))
            }
            (Place::Mem(tag), ty) => Ok((ctx.b.sload(*tag), ty.clone())),
            (Place::Reg(r), ty) => Ok((*r, ty.clone())),
            #[allow(unreachable_patterns)]
            _ => err(pos, "unsupported read"),
        }
    }

    fn read_lvalue(&mut self, ctx: &mut FuncCtx, lv: LValue, pos: Pos) -> Result<(Reg, Type)> {
        match lv {
            LValue::Reg(r, ty) => Ok((r, ty)),
            LValue::Scalar(tag, ty) => Ok((ctx.b.sload(tag), ty)),
            LValue::Cell { addr, tags, ty } => match ty {
                // An array cell (row of a 2-D array) decays to its address.
                Type::Array(elem, _) => Ok((addr, Type::Ptr(elem))),
                ty => Ok((ctx.b.load(addr, tags), ty)),
            },
            #[allow(unreachable_patterns)]
            _ => err(pos, "unsupported lvalue read"),
        }
    }

    /// Lowers an lvalue expression.
    fn lower_lvalue(&mut self, ctx: &mut FuncCtx, e: &Expr) -> Result<LValue> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(info) = ctx.lookup(name).cloned() {
                    return Ok(match (&info.place, &info.ty) {
                        (Place::Reg(r), ty) => LValue::Reg(*r, ty.clone()),
                        (Place::Mem(tag), ty) => LValue::Scalar(*tag, ty.clone()),
                    });
                }
                if let Some((tag, ty)) = self.global_vars.get(name).cloned() {
                    return Ok(LValue::Scalar(tag, ty));
                }
                err(e.pos, format!("unknown identifier `{name}`"))
            }
            ExprKind::Deref(inner) => {
                let (addr, ty) = self.lower_expr(ctx, inner)?;
                match ty {
                    Type::Ptr(pointee) => Ok(LValue::Cell {
                        addr,
                        tags: TagSet::All,
                        ty: (*pointee).clone(),
                    }),
                    other => err(e.pos, format!("cannot dereference `{other}`")),
                }
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem, tags) = self.lower_index_addr(ctx, base, idx, e.pos)?;
                Ok(LValue::Cell {
                    addr,
                    tags,
                    ty: elem,
                })
            }
            other => err(
                e.pos,
                format!(
                    "expression is not assignable: {:?}",
                    std::mem::discriminant(other)
                ),
            ),
        }
    }

    /// Computes the address of `base[idx]`, tracking the best-known tag set.
    fn lower_index_addr(
        &mut self,
        ctx: &mut FuncCtx,
        base: &Expr,
        idx: &Expr,
        pos: Pos,
    ) -> Result<(Reg, Type, TagSet)> {
        // Direct indexing of a named array keeps the singleton tag set.
        let (base_addr, elem_ty, tags) = self.lower_base_addr(ctx, base)?;
        let (i, ity) = self.lower_expr(ctx, idx)?;
        if ity != Type::Int {
            return err(pos, "array index must be int");
        }
        let scale = elem_ty.size_cells();
        let off = if scale == 1 {
            i
        } else {
            let s = ctx.b.iconst(scale as i64);
            ctx.b.binary(BinOp::Mul, i, s)
        };
        let addr = ctx.b.ptr_add(base_addr, off);
        Ok((addr, elem_ty, tags))
    }

    /// The address and element type of an indexable base expression.
    fn lower_base_addr(&mut self, ctx: &mut FuncCtx, base: &Expr) -> Result<(Reg, Type, TagSet)> {
        match &base.kind {
            ExprKind::Ident(name) => {
                let info = if let Some(i) = ctx.lookup(name).cloned() {
                    Some(i)
                } else {
                    self.global_vars
                        .get(name)
                        .cloned()
                        .map(|(tag, ty)| VarInfo {
                            ty,
                            place: Place::Mem(tag),
                        })
                };
                let Some(info) = info else {
                    return err(base.pos, format!("unknown identifier `{name}`"));
                };
                match (&info.place, &info.ty) {
                    (Place::Mem(tag), Type::Array(elem, _)) => {
                        self.module.tags.mark_address_taken(*tag);
                        let addr = ctx.b.lea(*tag);
                        Ok((addr, (**elem).clone(), TagSet::single(*tag)))
                    }
                    (_, Type::Ptr(pointee)) => {
                        let (r, _) = self.read_place(ctx, &info, base.pos)?;
                        Ok((r, (**pointee).clone(), TagSet::All))
                    }
                    (_, other) => err(base.pos, format!("cannot index `{other}`")),
                }
            }
            ExprKind::Index(b2, i2) => {
                // Multi-dimensional indexing: the inner index yields a row.
                let (addr, elem, tags) = self.lower_index_addr(ctx, b2, i2, base.pos)?;
                match elem {
                    Type::Array(inner, _) => Ok((addr, *inner, tags)),
                    Type::Ptr(inner) => {
                        // A pointer stored in an array cell: load it.
                        let p = ctx.b.load(addr, tags);
                        Ok((p, *inner, TagSet::All))
                    }
                    other => err(base.pos, format!("cannot index `{other}`")),
                }
            }
            _ => {
                let (r, ty) = self.lower_expr(ctx, base)?;
                match ty {
                    Type::Ptr(pointee) => Ok((r, *pointee, TagSet::All)),
                    other => err(base.pos, format!("cannot index `{other}`")),
                }
            }
        }
    }

    /// The address of an lvalue, for `&e`.
    fn lower_addr(&mut self, ctx: &mut FuncCtx, e: &Expr) -> Result<(Reg, Type)> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let info = if let Some(i) = ctx.lookup(name).cloned() {
                    Some(i)
                } else {
                    self.global_vars
                        .get(name)
                        .cloned()
                        .map(|(tag, ty)| VarInfo {
                            ty,
                            place: Place::Mem(tag),
                        })
                };
                let Some(info) = info else {
                    return err(e.pos, format!("unknown identifier `{name}`"));
                };
                match &info.place {
                    Place::Mem(tag) => {
                        self.module.tags.mark_address_taken(*tag);
                        let ty = match &info.ty {
                            Type::Array(elem, _) => (**elem).clone(),
                            t => t.clone(),
                        };
                        Ok((ctx.b.lea(*tag), ty))
                    }
                    Place::Reg(_) => err(
                        e.pos,
                        format!("internal error: `&{name}` but variable is in a register"),
                    ),
                }
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem, _) = self.lower_index_addr(ctx, base, idx, e.pos)?;
                Ok((addr, elem))
            }
            ExprKind::Deref(inner) => {
                let (r, ty) = self.lower_expr(ctx, inner)?;
                match ty {
                    Type::Ptr(p) => Ok((r, *p)),
                    other => err(e.pos, format!("cannot dereference `{other}`")),
                }
            }
            _ => err(e.pos, "cannot take the address of this expression"),
        }
    }

    fn lower_binary(
        &mut self,
        ctx: &mut FuncCtx,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
        pos: Pos,
    ) -> Result<(Reg, Type)> {
        // Short-circuit operators get control flow.
        if matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
            return self.lower_short_circuit(ctx, op, a, b);
        }
        let (ra, ta) = self.lower_expr(ctx, a)?;
        let (rb, tb) = self.lower_expr(ctx, b)?;
        // Pointer arithmetic.
        if matches!(op, BinaryOp::Add | BinaryOp::Sub) {
            match (&ta, &tb) {
                (Type::Ptr(elem), Type::Int) => {
                    let scaled = self.scale_index(ctx, rb, elem.size_cells());
                    let off = if op == BinaryOp::Sub {
                        ctx.b.unary(IrUnary::Neg, scaled)
                    } else {
                        scaled
                    };
                    return Ok((ctx.b.ptr_add(ra, off), ta.clone()));
                }
                (Type::Int, Type::Ptr(elem)) if op == BinaryOp::Add => {
                    let scaled = self.scale_index(ctx, ra, elem.size_cells());
                    return Ok((ctx.b.ptr_add(rb, scaled), tb.clone()));
                }
                _ => {}
            }
        }
        if op.is_comparison() {
            let cmp = match op {
                BinaryOp::Eq => CmpOp::Eq,
                BinaryOp::Ne => CmpOp::Ne,
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::Le => CmpOp::Le,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            let (ra, rb) = self.unify_arith_or_ptr(ctx, ra, &ta, rb, &tb, pos)?;
            return Ok((ctx.b.cmp(cmp, ra, rb), Type::Int));
        }
        // Plain arithmetic.
        let int_only = matches!(
            op,
            BinaryOp::Rem
                | BinaryOp::BitAnd
                | BinaryOp::BitOr
                | BinaryOp::BitXor
                | BinaryOp::Shl
                | BinaryOp::Shr
        );
        let irop = match op {
            BinaryOp::Add => BinOp::Add,
            BinaryOp::Sub => BinOp::Sub,
            BinaryOp::Mul => BinOp::Mul,
            BinaryOp::Div => BinOp::Div,
            BinaryOp::Rem => BinOp::Rem,
            BinaryOp::BitAnd => BinOp::And,
            BinaryOp::BitOr => BinOp::Or,
            BinaryOp::BitXor => BinOp::Xor,
            BinaryOp::Shl => BinOp::Shl,
            BinaryOp::Shr => BinOp::Shr,
            _ => unreachable!("handled above"),
        };
        match (&ta, &tb) {
            (Type::Int, Type::Int) => Ok((ctx.b.binary(irop, ra, rb), Type::Int)),
            (Type::Double, Type::Double) if !int_only => {
                Ok((ctx.b.binary(irop, ra, rb), Type::Double))
            }
            (Type::Int, Type::Double) if !int_only => {
                let ra = ctx.b.unary(IrUnary::IntToFloat, ra);
                Ok((ctx.b.binary(irop, ra, rb), Type::Double))
            }
            (Type::Double, Type::Int) if !int_only => {
                let rb = ctx.b.unary(IrUnary::IntToFloat, rb);
                Ok((ctx.b.binary(irop, ra, rb), Type::Double))
            }
            _ => err(pos, format!("invalid operands `{ta}` and `{tb}`")),
        }
    }

    fn scale_index(&mut self, ctx: &mut FuncCtx, r: Reg, scale: usize) -> Reg {
        if scale == 1 {
            r
        } else {
            let s = ctx.b.iconst(scale as i64);
            ctx.b.binary(BinOp::Mul, r, s)
        }
    }

    fn unify_arith_or_ptr(
        &mut self,
        ctx: &mut FuncCtx,
        ra: Reg,
        ta: &Type,
        rb: Reg,
        tb: &Type,
        pos: Pos,
    ) -> Result<(Reg, Reg)> {
        match (ta, tb) {
            (Type::Int, Type::Int)
            | (Type::Double, Type::Double)
            | (Type::Ptr(_), Type::Ptr(_))
            | (Type::Func, Type::Func)
            // Pointer vs. integer zero (null comparisons).
            | (Type::Ptr(_), Type::Int)
            | (Type::Int, Type::Ptr(_)) => Ok((ra, rb)),
            (Type::Int, Type::Double) => Ok((ctx.b.unary(IrUnary::IntToFloat, ra), rb)),
            (Type::Double, Type::Int) => Ok((ra, ctx.b.unary(IrUnary::IntToFloat, rb))),
            _ => err(pos, format!("cannot compare `{ta}` with `{tb}`")),
        }
    }

    fn lower_short_circuit(
        &mut self,
        ctx: &mut FuncCtx,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<(Reg, Type)> {
        let result = ctx.b.new_reg();
        let rhs_bb = ctx.b.new_block();
        let short_bb = ctx.b.new_block();
        let join = ctx.b.new_block();
        let ca = self.lower_condition(ctx, a)?;
        match op {
            BinaryOp::LogAnd => ctx.b.branch(ca, rhs_bb, short_bb),
            BinaryOp::LogOr => ctx.b.branch(ca, short_bb, rhs_bb),
            _ => unreachable!(),
        }
        ctx.b.switch_to(short_bb);
        let short_val = ctx.b.iconst((op == BinaryOp::LogOr) as i64);
        ctx.b.emit(Instr::Copy {
            dst: result,
            src: short_val,
        });
        ctx.b.jump(join);
        ctx.b.switch_to(rhs_bb);
        let cb = self.lower_condition(ctx, b)?;
        // Normalize to 0/1.
        let z = ctx.b.iconst(0);
        let norm = ctx.b.cmp(CmpOp::Ne, cb, z);
        ctx.b.emit(Instr::Copy {
            dst: result,
            src: norm,
        });
        ctx.b.jump(join);
        ctx.b.switch_to(join);
        Ok((result, Type::Int))
    }

    /// Lowers a call expression. Returns the (reg, type) of the result, or
    /// `None` for a void call.
    fn lower_call(
        &mut self,
        ctx: &mut FuncCtx,
        callee: &Expr,
        args: &[Expr],
        pos: Pos,
        stmt_context: bool,
    ) -> Result<Option<(Reg, Type)>> {
        let _ = stmt_context;
        let ExprKind::Ident(name) = &callee.kind else {
            // Calling a computed expression: must be func-typed.
            let (r, ty) = self.lower_expr(ctx, callee)?;
            if ty != Type::Func {
                return err(pos, format!("cannot call a value of type `{ty}`"));
            }
            return self.lower_indirect_call(ctx, r, args);
        };
        // Local/global variables shadow functions.
        let var_info = ctx.lookup(name).cloned().or_else(|| {
            self.global_vars
                .get(name)
                .cloned()
                .map(|(tag, ty)| VarInfo {
                    ty,
                    place: Place::Mem(tag),
                })
        });
        if let Some(info) = var_info {
            if info.ty != Type::Func {
                return err(pos, format!("cannot call `{name}` of type `{}`", info.ty));
            }
            let (r, _) = self.read_place(ctx, &info, pos)?;
            return self.lower_indirect_call(ctx, r, args);
        }
        if let Some(&(fid, ref ret, ref params)) = self.func_sigs.get(name) {
            let ret = ret.clone();
            let params = params.clone();
            if args.len() != params.len() {
                return err(
                    pos,
                    format!(
                        "`{name}` expects {} arguments, got {}",
                        params.len(),
                        args.len()
                    ),
                );
            }
            let mut argv = Vec::with_capacity(args.len());
            for (arg, pty) in args.iter().zip(&params) {
                let (r, ty) = self.lower_expr(ctx, arg)?;
                argv.push(self.convert(ctx, r, &ty, pty, arg.pos)?);
            }
            return Ok(match ret {
                Some(rt) => Some((ctx.b.call(fid, argv), rt)),
                None => {
                    ctx.b.call_void(fid, argv);
                    None
                }
            });
        }
        if let Some(intr) = Intrinsic::from_name(name) {
            return self.lower_intrinsic(ctx, intr, args, pos);
        }
        err(pos, format!("unknown function `{name}`"))
    }

    fn lower_indirect_call(
        &mut self,
        ctx: &mut FuncCtx,
        target: Reg,
        args: &[Expr],
    ) -> Result<Option<(Reg, Type)>> {
        let mut argv = Vec::with_capacity(args.len());
        for arg in args {
            let (r, _) = self.lower_expr(ctx, arg)?;
            argv.push(r);
        }
        // Indirect callees are dynamically checked; MiniC gives them an
        // int result (the common case for our table-driven benchmarks).
        let r = ctx
            .b
            .call_indirect(target, argv, true)
            .expect("result requested");
        Ok(Some((r, Type::Int)))
    }

    fn lower_intrinsic(
        &mut self,
        ctx: &mut FuncCtx,
        intr: Intrinsic,
        args: &[Expr],
        pos: Pos,
    ) -> Result<Option<(Reg, Type)>> {
        if args.len() != intr.arity() {
            return err(
                pos,
                format!(
                    "`{}` expects {} arguments, got {}",
                    intr.name(),
                    intr.arity(),
                    args.len()
                ),
            );
        }
        let (param_tys, ret): (Vec<Type>, Option<Type>) = match intr {
            Intrinsic::PrintInt => (vec![Type::Int], None),
            Intrinsic::PrintFloat => (vec![Type::Double], None),
            Intrinsic::Sqrt | Intrinsic::Sin | Intrinsic::Cos | Intrinsic::AbsFloat => {
                (vec![Type::Double], Some(Type::Double))
            }
            Intrinsic::Pow => (vec![Type::Double, Type::Double], Some(Type::Double)),
            Intrinsic::AbsInt => (vec![Type::Int], Some(Type::Int)),
            Intrinsic::Exit => (vec![Type::Int], None),
        };
        let mut argv = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&param_tys) {
            let (r, ty) = self.lower_expr(ctx, arg)?;
            argv.push(self.convert(ctx, r, &ty, pty, arg.pos)?);
        }
        let result = ctx.b.call_intrinsic(intr, argv);
        Ok(result.map(|r| (r, ret.expect("intrinsics with results declare them"))))
    }

    /// Inserts implicit conversions for assignment-like contexts.
    fn convert(
        &mut self,
        ctx: &mut FuncCtx,
        r: Reg,
        from: &Type,
        to: &Type,
        pos: Pos,
    ) -> Result<Reg> {
        match (from, to) {
            (a, b) if a == b => Ok(r),
            (Type::Int, Type::Double) => Ok(ctx.b.unary(IrUnary::IntToFloat, r)),
            (Type::Double, Type::Int) => Ok(ctx.b.unary(IrUnary::FloatToInt, r)),
            // Any pointer converts to any pointer (mirrors C's permissive
            // `void*` flows through malloc and generic routines).
            (Type::Ptr(_), Type::Ptr(_)) => Ok(r),
            // MiniC memory cells are untyped at run time, and the language
            // has no structs; linked data structures therefore store
            // pointers in `int` cells. Pointer<->int flows are permitted
            // statically (the null-pointer idiom `p = 0` included) and
            // checked dynamically by the VM at each use.
            (Type::Int, Type::Ptr(_)) | (Type::Ptr(_), Type::Int) => Ok(r),
            (Type::Func, Type::Func) | (Type::Func, Type::Int) | (Type::Int, Type::Func) => Ok(r),
            (a, b) => err(pos, format!("cannot convert `{a}` to `{b}`")),
        }
    }
}

/// Compiles a MiniC program to an IL module with the baseline front end.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str) -> Result<Module> {
    let program = crate::classic::parser::parse(src)?;
    let module = Lowerer::run(&program)?;
    debug_assert!(
        ir::validate(&module).is_ok(),
        "lowering produced invalid IL"
    );
    Ok(module)
}
