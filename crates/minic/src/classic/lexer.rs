//! The baseline MiniC lexer: allocates a fresh token vector and a
//! `String` per identifier occurrence.

use crate::classic::token::{Tok, Token};
use crate::error::{FrontError, Phase};
use crate::token::Pos;

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a [`FrontError`] on an unknown character, a malformed number, or
/// an unterminated block comment.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = pos!();
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(FrontError::new(
                            Phase::Lex,
                            start,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        let p = pos!();
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                bump!();
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
            {
                is_float = true;
                bump!();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                bump!();
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    bump!();
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| {
                    FrontError::new(Phase::Lex, p, format!("malformed float literal {text}"))
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| {
                    FrontError::new(
                        Phase::Lex,
                        p,
                        format!("integer literal {text} out of range"),
                    )
                })?)
            };
            out.push(Token { tok, pos: p });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            let word = &src[start..i];
            let tok = Tok::keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
            out.push(Token { tok, pos: p });
            continue;
        }
        // Operators; longest match first.
        let two = if i + 1 < bytes.len() {
            &src[i..i + 2]
        } else {
            ""
        };
        let tok2 = match two {
            "+=" => Some(Tok::PlusAssign),
            "-=" => Some(Tok::MinusAssign),
            "*=" => Some(Tok::StarAssign),
            "/=" => Some(Tok::SlashAssign),
            "%=" => Some(Tok::PercentAssign),
            "==" => Some(Tok::EqEq),
            "!=" => Some(Tok::NotEq),
            "<=" => Some(Tok::Le),
            ">=" => Some(Tok::Ge),
            "<<" => Some(Tok::Shl),
            ">>" => Some(Tok::Shr),
            "&&" => Some(Tok::AndAnd),
            "||" => Some(Tok::OrOr),
            "++" => Some(Tok::PlusPlus),
            "--" => Some(Tok::MinusMinus),
            _ => None,
        };
        if let Some(t) = tok2 {
            bump!();
            bump!();
            out.push(Token { tok: t, pos: p });
            continue;
        }
        let tok1 = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'=' => Tok::Assign,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'&' => Tok::Amp,
            b'|' => Tok::Pipe,
            b'^' => Tok::Caret,
            b'!' => Tok::Bang,
            b'<' => Tok::Lt,
            b'>' => Tok::Gt,
            other => {
                return Err(FrontError::new(
                    Phase::Lex,
                    p,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        bump!();
        out.push(Token { tok: tok1, pos: p });
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}
