//! Tokens of the MiniC language.
//!
//! Tokens are `Copy`: identifiers carry an interned [`Symbol`] instead of
//! an owned `String`, so the parser can match and move tokens by value
//! without cloning. Rendering a token for an error message needs the
//! interner that produced it — see [`Tok::display`].

use crate::intern::{Interner, Symbol};
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kinds of MiniC tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier (interned).
    Ident(Symbol),

    // Keywords.
    /// `int`
    KwInt,
    /// `double`
    KwDouble,
    /// `void`
    KwVoid,
    /// `func` (function-pointer type)
    KwFunc,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `do`
    KwDo,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of input.
    Eof,
}

impl Tok {
    /// Resolves keywords, returning `None` for ordinary identifiers. The
    /// argument is raw source bytes — no intermediate `String` on either
    /// the hit or the miss path.
    pub fn keyword(word: &[u8]) -> Option<Tok> {
        Some(match word {
            b"int" => Tok::KwInt,
            b"double" => Tok::KwDouble,
            b"void" => Tok::KwVoid,
            b"func" => Tok::KwFunc,
            b"if" => Tok::KwIf,
            b"else" => Tok::KwElse,
            b"while" => Tok::KwWhile,
            b"for" => Tok::KwFor,
            b"do" => Tok::KwDo,
            b"return" => Tok::KwReturn,
            b"break" => Tok::KwBreak,
            b"continue" => Tok::KwContinue,
            _ => return None,
        })
    }

    /// A displayable view of the token; identifiers resolve their name
    /// through `interner`. Cold path — error messages only.
    pub fn display<'a>(&self, interner: &'a Interner) -> TokDisplay<'a> {
        TokDisplay {
            tok: *self,
            interner,
        }
    }
}

/// [`Tok`] paired with the interner that can resolve its identifier, for
/// `Display`. Produced by [`Tok::display`].
#[derive(Debug, Clone, Copy)]
pub struct TokDisplay<'a> {
    tok: Tok,
    interner: &'a Interner,
}

impl fmt::Display for TokDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tok {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{}", self.interner.name(s)),
            other => write!(f, "{}", fixed_spelling(other)),
        }
    }
}

/// The source spelling of every token without a payload.
fn fixed_spelling(tok: Tok) -> &'static str {
    match tok {
        Tok::Int(_) | Tok::Float(_) | Tok::Ident(_) => unreachable!("payload tokens"),
        Tok::KwInt => "int",
        Tok::KwDouble => "double",
        Tok::KwVoid => "void",
        Tok::KwFunc => "func",
        Tok::KwIf => "if",
        Tok::KwElse => "else",
        Tok::KwWhile => "while",
        Tok::KwFor => "for",
        Tok::KwDo => "do",
        Tok::KwReturn => "return",
        Tok::KwBreak => "break",
        Tok::KwContinue => "continue",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBrace => "{",
        Tok::RBrace => "}",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Semi => ";",
        Tok::Comma => ",",
        Tok::Assign => "=",
        Tok::PlusAssign => "+=",
        Tok::MinusAssign => "-=",
        Tok::StarAssign => "*=",
        Tok::SlashAssign => "/=",
        Tok::PercentAssign => "%=",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::Amp => "&",
        Tok::Pipe => "|",
        Tok::Caret => "^",
        Tok::Shl => "<<",
        Tok::Shr => ">>",
        Tok::AndAnd => "&&",
        Tok::OrOr => "||",
        Tok::Bang => "!",
        Tok::EqEq => "==",
        Tok::NotEq => "!=",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::PlusPlus => "++",
        Tok::MinusMinus => "--",
        Tok::Eof => "<eof>",
    }
}

/// A token paired with its position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Its source position.
    pub pos: Pos,
}
