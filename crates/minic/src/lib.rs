//! MiniC: the C-subset front end of the register-promotion compiler.
//!
//! MiniC covers the C features the paper's evaluation exercises: `int` and
//! `double` scalars, pointers with arithmetic, 1-D and 2-D arrays, globals
//! with initializers, address-of, `malloc`, recursion, and function
//! pointers (spelled `func`). The front end lowers to the tagged IL of the
//! [`ir`] crate, making the storage decisions the paper describes: values
//! that may be aliased (globals, address-taken locals, arrays) live in
//! memory behind *tags*; everything else lives in virtual registers.
//!
//! The front end is built for throughput: identifiers are interned to
//! `u32` [`Symbol`]s, tokens are `Copy`, and the AST lives in per-module
//! id pools rather than `Box`es. A [`Frontend`] owns all of those buffers
//! and recycles them across compiles; the free [`compile`] function is a
//! one-shot convenience on top of it. The original allocating front end is
//! preserved verbatim under [`classic`] as the measurement baseline.
//!
//! ```
//! use vm::{Vm, VmOptions};
//!
//! let module = minic::compile(r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 10; i++) { counter += i; }
//!         print_int(counter);
//!         return counter;
//!     }
//! "#)?;
//! let out = Vm::run_main(&module, VmOptions::default())?;
//! assert_eq!(out.output, vec!["45"]);
//! // `counter` is a global: unpromoted code loads and stores it in the loop.
//! assert!(out.counts.loads >= 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod classic;
mod error;
mod fingerprint;
mod frontend;
mod intern;
mod lexer;
mod lower;
mod parser;
mod token;

pub use error::{FrontError, Phase};
pub use fingerprint::{source_fingerprint, FuncSpan, SourceFingerprint};
pub use frontend::{compile, Frontend};
pub use intern::{Interner, Symbol};
pub use token::{Pos, Tok, Token};
