//! MiniC: the C-subset front end of the register-promotion compiler.
//!
//! MiniC covers the C features the paper's evaluation exercises: `int` and
//! `double` scalars, pointers with arithmetic, 1-D and 2-D arrays, globals
//! with initializers, address-of, `malloc`, recursion, and function
//! pointers (spelled `func`). The front end lowers to the tagged IL of the
//! [`ir`] crate, making the storage decisions the paper describes: values
//! that may be aliased (globals, address-taken locals, arrays) live in
//! memory behind *tags*; everything else lives in virtual registers.
//!
//! ```
//! use vm::{Vm, VmOptions};
//!
//! let module = minic::compile(r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 10; i++) { counter += i; }
//!         print_int(counter);
//!         return counter;
//!     }
//! "#)?;
//! let out = Vm::run_main(&module, VmOptions::default())?;
//! assert_eq!(out.output, vec!["45"]);
//! // `counter` is a global: unpromoted code loads and stores it in the loop.
//! assert!(out.counts.loads >= 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod token;

pub use error::{FrontError, Phase};
pub use lexer::lex;
pub use lower::compile;
pub use parser::parse;
pub use token::{Pos, Tok, Token};
