//! String interning: names resolved once at the boundary, compared as ids.
//!
//! The front end sees every identifier many times — the lexer once per
//! occurrence, the parser once per use, lowering once per lookup — and
//! before this module each sighting cost a fresh `String`. The
//! [`Interner`] folds all of them into a single append-only text arena
//! plus a span table: interning an already-seen name is a hash probe and
//! two integer compares, no allocation at all. The [`Symbol`] it hands
//! back is the identifier for the rest of the front end; two names are
//! equal iff their symbols are equal, so scope tables, signature maps,
//! and the addressed-variable set all key on a `u32`.
//!
//! Hashing is the same FxHash-style multiply-rotate scheme the rest of
//! the repo uses (std-only, no external crates): fast on short ASCII
//! keys and good enough for open addressing at 3/4 load.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// An interned identifier: an index into its [`Interner`]'s span table.
///
/// Symbols are only meaningful to the interner that produced them;
/// resolving one through a different interner is a logic error (and
/// panics if the index is out of range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's dense index, for direct-mapped side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-rotate hash of a byte string.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut state = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        state = (state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
    let mut tail = 0u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | b as u64;
    }
    state = (state.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    // Finalize with the length so prefixes of each other differ.
    (state.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(FX_SEED)
}

/// The FxHash-style [`Hasher`] behind [`FxHashMap`]: one multiply-rotate
/// round per `write`, a `u64` mix for the common fixed-width keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        self.state = (self.state.rotate_left(5) ^ hash_bytes(bytes)).wrapping_mul(FX_SEED);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` using the repo's FxHash-style hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using the repo's FxHash-style hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// An append-only string interner: one concatenated text arena, a span
/// per symbol, and an open-addressing table from name to symbol.
///
/// ```
/// use minic::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("x");
/// let b = i.intern("y");
/// assert_ne!(a, b);
/// assert_eq!(i.intern("x"), a); // no allocation on a repeat
/// assert_eq!(i.name(a), "x");
/// ```
#[derive(Debug, Clone)]
pub struct Interner {
    /// Every interned name, concatenated.
    text: String,
    /// Byte span of each symbol in `text`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of `symbol_index + 1` (0 = empty slot);
    /// capacity is always a power of two.
    table: Vec<u32>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner with a small pre-sized table.
    pub fn new() -> Interner {
        Interner {
            text: String::new(),
            spans: Vec::new(),
            table: vec![0; 64],
        }
    }

    /// The number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Interns `name`, returning its symbol. Allocates only the first
    /// time a distinct name is seen (and on table growth).
    pub fn intern(&mut self, name: &str) -> Symbol {
        let hash = hash_bytes(name.as_bytes());
        if let Some(sym) = self.probe(hash, name) {
            return sym;
        }
        if (self.spans.len() + 1) * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let start = self.text.len() as u32;
        self.text.push_str(name);
        let sym = Symbol(self.spans.len() as u32);
        self.spans.push((start, self.text.len() as u32));
        self.insert(hash, sym);
        sym
    }

    /// The name a symbol resolves to.
    pub fn name(&self, sym: Symbol) -> &str {
        let (start, end) = self.spans[sym.index()];
        &self.text[start as usize..end as usize]
    }

    /// Looks a name up without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.probe(hash_bytes(name.as_bytes()), name)
    }

    fn probe(&self, hash: u64, name: &str) -> Option<Symbol> {
        let mask = self.table.len() - 1;
        let mut slot = hash as usize & mask;
        loop {
            match self.table[slot] {
                0 => return None,
                entry => {
                    let sym = Symbol(entry - 1);
                    if self.name(sym) == name {
                        return Some(sym);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn insert(&mut self, hash: u64, sym: Symbol) {
        let mask = self.table.len() - 1;
        let mut slot = hash as usize & mask;
        while self.table[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        self.table[slot] = sym.0 + 1;
    }

    fn grow(&mut self) {
        let new_cap = self.table.len() * 2;
        self.table.clear();
        self.table.resize(new_cap, 0);
        for i in 0..self.spans.len() {
            let sym = Symbol(i as u32);
            let hash = hash_bytes(self.name(sym).as_bytes());
            self.insert(hash, sym);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.intern("beta"), b);
        assert_eq!(i.name(a), "alpha");
        assert_eq!(i.name(b), "beta");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let s = i.intern("x");
        assert_eq!(i.lookup("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn survives_table_growth() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..500).map(|n| i.intern(&format!("name_{n}"))).collect();
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(i.name(sym), format!("name_{n}"));
            assert_eq!(i.intern(&format!("name_{n}")), sym);
        }
        assert_eq!(i.len(), 500);
    }

    #[test]
    fn prefixes_are_distinct() {
        let mut i = Interner::new();
        let a = i.intern("ab");
        let b = i.intern("abc");
        let c = i.intern("a");
        assert!(a != b && b != c && a != c);
        assert_eq!(i.name(b), "abc");
    }

    #[test]
    fn empty_name_is_a_name() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.name(e), "");
        assert_eq!(i.intern(""), e);
    }
}
